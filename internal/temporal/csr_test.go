package temporal

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/snapshot"
)

// --- CSR builder ---

func TestBuildCSREmpty(t *testing.T) {
	var scratch CSRScratch
	c := BuildCSR(nil, 0, 10, &scratch)
	if c.NumLayers() != 0 || c.NumEdges() != 0 {
		t.Fatalf("empty CSR: layers=%d edges=%d", c.NumLayers(), c.NumEdges())
	}
	if len(c.Off) != 1 || c.Off[0] != 0 {
		t.Fatalf("empty CSR offsets = %v", c.Off)
	}
	if got := FromLayers(nil); got.NumLayers() != 0 || len(got.Off) != 1 {
		t.Fatalf("FromLayers(nil) = %+v", got)
	}
}

func TestBuildCSRDuplicatesAndWindows(t *testing.T) {
	// Two windows of delta=10 from t0=100: events at 100..109 -> k=0,
	// 110..119 -> k=1. Duplicates inside a window collapse, across
	// windows do not.
	events := []linkstream.Event{
		{U: 1, V: 2, T: 100},
		{U: 1, V: 2, T: 105}, // duplicate of (1,2) in window 0
		{U: 2, V: 3, T: 107},
		{U: 1, V: 2, T: 110}, // same edge, next window
		{U: 2, V: 3, T: 111},
		{U: 2, V: 3, T: 111}, // exact duplicate
	}
	var scratch CSRScratch
	c := BuildCSR(events, 100, 10, &scratch)
	if c.NumLayers() != 2 {
		t.Fatalf("layers = %d, want 2", c.NumLayers())
	}
	if c.Keys[0] != 0 || c.Keys[1] != 1 {
		t.Fatalf("keys = %v", c.Keys)
	}
	if c.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4 after dedup", c.NumEdges())
	}
	layers := c.Layers()
	want0 := []snapshot.Edge{{U: 1, V: 2}, {U: 2, V: 3}}
	if len(layers[0].Edges) != 2 || layers[0].Edges[0] != want0[0] || layers[0].Edges[1] != want0[1] {
		t.Fatalf("window 0 edges = %v", layers[0].Edges)
	}
	if len(layers[1].Edges) != 2 {
		t.Fatalf("window 1 edges = %v", layers[1].Edges)
	}
}

func TestStreamCSRDirectedVsUndirected(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(3)
	// (1,0) and (0,1) at the same timestamp: distinct when directed,
	// one canonical edge when undirected.
	if err := s.AddID(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddID(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	dir := StreamCSR(s, true)
	if dir.NumLayers() != 1 || dir.NumEdges() != 2 {
		t.Fatalf("directed CSR: layers=%d edges=%d", dir.NumLayers(), dir.NumEdges())
	}
	und := StreamCSR(s, false)
	if und.NumEdges() != 1 {
		t.Fatalf("undirected CSR should canonicalise to 1 edge, got %d", und.NumEdges())
	}
	if und.Ends[0] != 0 || und.Ends[1] != 1 {
		t.Fatalf("canonical edge = (%d,%d), want (0,1)", und.Ends[0], und.Ends[1])
	}
	if und.Keys[0] != 5 {
		t.Fatalf("stream layer key = %d, want raw timestamp 5", und.Keys[0])
	}
}

func TestFromLayersRoundTrip(t *testing.T) {
	layers := []Layer{
		{Key: 3, Edges: []snapshot.Edge{{U: 0, V: 1}}},
		{Key: 7, Edges: []snapshot.Edge{{U: 1, V: 2}, {U: 0, V: 2}}},
	}
	c := FromLayers(layers)
	back := c.Layers()
	if len(back) != len(layers) {
		t.Fatalf("round trip layers = %d", len(back))
	}
	for i := range layers {
		if back[i].Key != layers[i].Key || len(back[i].Edges) != len(layers[i].Edges) {
			t.Fatalf("layer %d mismatch: %+v vs %+v", i, back[i], layers[i])
		}
		for j := range layers[i].Edges {
			if back[i].Edges[j] != layers[i].Edges[j] {
				t.Fatalf("layer %d edge %d mismatch", i, j)
			}
		}
	}
}

// --- Equivalence of the CSR sweep and the slice-based reference ---

// randomStream builds a seeded synthetic stream with duplicates and
// both edge orientations.
func randomStream(t *testing.T, n, events int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for i := 0; i < events; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if err := s.AddID(u, v, rng.Int63n(T)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// referenceTrips runs the retained slice-based sweep (destState.run).
func referenceTrips(cfg Config, layers []Layer) []Trip {
	var out []Trip
	st := newDestState(cfg.N)
	for d := int32(0); int(d) < cfg.N; d++ {
		st.run(d, layers, cfg.Directed, func(u int32, dep, arr int64, hops int32) {
			out = append(out, Trip{U: u, V: d, Dep: dep, Arr: arr, Hops: hops})
		}, nil, 0)
	}
	return out
}

// referenceDistances runs the retained slice-based distance sweep.
func referenceDistances(cfg Config, layers []Layer, kMin, durPlus int64) DistanceStats {
	var total distAcc
	st := newDestState(cfg.N)
	for d := int32(0); int(d) < cfg.N; d++ {
		acc := distAcc{durPlus: durPlus, kMin: kMin}
		st.run(d, layers, cfg.Directed, nil, &acc, 0)
		total.sumTime += acc.sumTime
		total.sumHops += acc.sumHops
		total.count += acc.count
	}
	if total.count == 0 {
		return DistanceStats{}
	}
	return DistanceStats{
		MeanTime: total.sumTime / float64(total.count),
		MeanHops: total.sumHops / float64(total.count),
		Count:    total.count,
	}
}

// equivalenceWorkloads yields the seeded workloads the CSR engine is
// checked against: different densities, time spans and orientations.
func equivalenceWorkloads(t *testing.T) []struct {
	name     string
	layers   []Layer
	n        int
	directed bool
} {
	t.Helper()
	var out []struct {
		name     string
		layers   []Layer
		n        int
		directed bool
	}
	for _, w := range []struct {
		name            string
		n, events       int
		T, delta        int64
		seed            int64
		directed        bool
		streamSemantics bool
	}{
		{name: "sparse-undirected", n: 12, events: 150, T: 400, delta: 20, seed: 1},
		{name: "dense-undirected", n: 8, events: 600, T: 200, delta: 10, seed: 2},
		{name: "directed", n: 10, events: 300, T: 300, delta: 15, seed: 3, directed: true},
		{name: "stream-undirected", n: 9, events: 200, T: 250, seed: 4, streamSemantics: true},
		{name: "coarse-two-windows", n: 10, events: 250, T: 500, delta: 250, seed: 5},
	} {
		s := randomStream(t, w.n, w.events, w.T, w.seed)
		var layers []Layer
		if w.streamSemantics {
			layers = StreamLayers(s, w.directed)
		} else {
			g, err := series.Aggregate(s, w.delta, w.directed)
			if err != nil {
				t.Fatal(err)
			}
			layers = SeriesLayers(g)
		}
		out = append(out, struct {
			name     string
			layers   []Layer
			n        int
			directed bool
		}{w.name, layers, w.n, w.directed})
	}
	return out
}

func TestCSRSweepMatchesReferenceTrips(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		cfg := Config{N: w.n, Directed: w.directed, Workers: 2}
		want := referenceTrips(cfg, w.layers)
		got := CollectTripsCSR(cfg, FromLayers(w.layers))
		sortTrips(want)
		sortTrips(got)
		if len(got) != len(want) {
			t.Fatalf("%s: %d trips, reference has %d", w.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: trip %d = %+v, reference %+v", w.name, i, got[i], want[i])
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s: degenerate workload with no trips", w.name)
		}
	}
}

func TestCSRSweepMatchesReferenceOccupancies(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		cfg := Config{N: w.n, Directed: w.directed, Workers: 2}
		ref := referenceTrips(cfg, w.layers)
		want := make([]float64, 0, len(ref))
		for _, tr := range ref {
			want = append(want, tr.Occupancy())
		}
		got := OccupanciesCSR(cfg, FromLayers(w.layers))
		if len(got) != len(want) {
			t.Fatalf("%s: %d occupancies, reference has %d", w.name, len(got), len(want))
		}
		sortFloats(want)
		sortFloats(got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: occupancy %d = %v, reference %v", w.name, i, got[i], want[i])
			}
		}
	}
}

func TestCSRSweepMatchesReferenceDistances(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		for _, durPlus := range []int64{0, 1} {
			cfg := Config{N: w.n, Directed: w.directed, Workers: 2}
			want := referenceDistances(cfg, w.layers, 0, durPlus)
			got := DistancesCSR(cfg, FromLayers(w.layers), 0, durPlus)
			if got.Count != want.Count {
				t.Fatalf("%s durPlus=%d: count %d, reference %d", w.name, durPlus, got.Count, want.Count)
			}
			if math.Abs(got.MeanTime-want.MeanTime) > 1e-9 || math.Abs(got.MeanHops-want.MeanHops) > 1e-9 {
				t.Fatalf("%s durPlus=%d: distances %+v, reference %+v", w.name, durPlus, got, want)
			}
		}
	}
}

func TestCSRReachablePairsMatchesReference(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		cfg := Config{N: w.n, Directed: w.directed, Workers: 2}
		// Reference: a pair is reachable iff it has at least one trip.
		type pair struct{ u, v int32 }
		seen := map[pair]bool{}
		for _, tr := range referenceTrips(cfg, w.layers) {
			seen[pair{tr.U, tr.V}] = true
		}
		got := CountReachablePairsCSR(cfg, FromLayers(w.layers))
		if got != int64(len(seen)) {
			t.Fatalf("%s: reachable pairs %d, reference %d", w.name, got, len(seen))
		}
	}
}

func sortFloats(v []float64) { sort.Float64s(v) }
