package temporal

import (
	"math"
	"testing"
)

// --- Lane-width plumbing ---

func TestLaneWidthResolution(t *testing.T) {
	if w := DefaultLaneWidth(); w != 4 && w != 8 {
		t.Fatalf("DefaultLaneWidth() = %d, want 4 or 8", w)
	}
	for _, w := range []int{0, 4, 8} {
		if !ValidLaneWidth(w) {
			t.Fatalf("ValidLaneWidth(%d) = false", w)
		}
	}
	for _, w := range []int{-1, 1, 2, 3, 5, 6, 7, 16} {
		if ValidLaneWidth(w) {
			t.Fatalf("ValidLaneWidth(%d) = true", w)
		}
	}
	if ResolveLaneWidth(0) != DefaultLaneWidth() {
		t.Fatalf("ResolveLaneWidth(0) = %d, want default %d", ResolveLaneWidth(0), DefaultLaneWidth())
	}
	for _, w := range []int{4, 8} {
		if ResolveLaneWidth(w) != w {
			t.Fatalf("ResolveLaneWidth(%d) = %d", w, ResolveLaneWidth(w))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResolveLaneWidth(3) did not panic")
		}
	}()
	ResolveLaneWidth(3)
}

// TestLaneWidthEquivalenceTrips pins the tentpole bit-exactness
// guarantee: the 4- and 8-lane kernels produce exactly the reference
// sweep's trips — same multiset, and destination-major order from the
// flat collection — on every workload × orientation × worker count.
func TestLaneWidthEquivalenceTrips(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		c := FromLayers(w.layers)
		want := referenceTrips(Config{N: w.n, Directed: w.directed, Workers: 1}, w.layers)
		sortTrips(want)
		for _, width := range []int{4, 8} {
			for _, workers := range []int{1, 3} {
				cfg := Config{N: w.n, Directed: w.directed, Workers: workers, LaneWidth: width}
				got := CollectTripsCSR(cfg, c)
				// The flat collection is destination-major for every width.
				for i := 1; i < len(got); i++ {
					if got[i].V < got[i-1].V {
						t.Fatalf("%s width=%d workers=%d: destination order broken at %d", w.name, width, workers, i)
					}
				}
				sortTrips(got)
				if len(got) != len(want) {
					t.Fatalf("%s width=%d workers=%d: %d trips, reference has %d", w.name, width, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s width=%d workers=%d: trip %d = %+v, reference %+v", w.name, width, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestLaneWidthEquivalenceOccupancies checks that the occupancy
// multiset is width-invariant (the interleaving may differ; the values
// may not).
func TestLaneWidthEquivalenceOccupancies(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		c := FromLayers(w.layers)
		ref := referenceTrips(Config{N: w.n, Directed: w.directed, Workers: 1}, w.layers)
		want := make([]float64, 0, len(ref))
		for _, tr := range ref {
			want = append(want, tr.Occupancy())
		}
		sortFloats(want)
		for _, width := range []int{4, 8} {
			cfg := Config{N: w.n, Directed: w.directed, Workers: 2, LaneWidth: width}
			got := OccupanciesCSR(cfg, c)
			sortFloats(got)
			if len(got) != len(want) {
				t.Fatalf("%s width=%d: %d occupancies, reference has %d", w.name, width, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("%s width=%d: occupancy %d = %v, reference %v", w.name, width, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLaneWidthEquivalenceDistances checks the distance sink across
// widths: identical counts and bit-identical means, because the sink
// folds per-destination partials in destination order regardless of
// lane interleaving.
func TestLaneWidthEquivalenceDistances(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		c := FromLayers(w.layers)
		for _, durPlus := range []int64{0, 1} {
			want := referenceDistances(Config{N: w.n, Directed: w.directed}, w.layers, 0, durPlus)
			for _, width := range []int{4, 8} {
				cfg := Config{N: w.n, Directed: w.directed, Workers: 2, LaneWidth: width}
				got := DistancesCSR(cfg, c, 0, durPlus)
				if got.Count != want.Count {
					t.Fatalf("%s width=%d durPlus=%d: count %d, reference %d", w.name, width, durPlus, got.Count, want.Count)
				}
				if got.MeanTime != want.MeanTime || got.MeanHops != want.MeanHops {
					t.Fatalf("%s width=%d durPlus=%d: distances %+v, reference %+v", w.name, width, durPlus, got, want)
				}
			}
		}
	}
}

// TestLaneWidthEquivalenceLanes checks the blocked lane collection
// itself: lane slot width*b+l holds exactly destination d = width*b+l's
// run, for both widths.
func TestLaneWidthEquivalenceLanes(t *testing.T) {
	for _, w := range equivalenceWorkloads(t) {
		c := FromLayers(w.layers)
		for _, width := range []int{4, 8} {
			cfg := Config{N: w.n, Directed: w.directed, Workers: 2, LaneWidth: width}
			lanes := CollectTripLanes(cfg, c)
			if len(lanes) != w.n {
				t.Fatalf("%s width=%d: %d lanes, want %d (one per destination)", w.name, width, len(lanes), w.n)
			}
			for d, lane := range lanes {
				for _, tr := range lane {
					if tr.V != int32(d) {
						t.Fatalf("%s width=%d: lane %d holds a trip to %d", w.name, width, d, tr.V)
					}
				}
			}
			if int(lanesTotal(lanes)) == 0 {
				t.Fatalf("%s: degenerate workload with no trips", w.name)
			}
		}
	}
}

func lanesTotal(lanes [][]Trip) int64 {
	var n int64
	for _, l := range lanes {
		n += int64(len(l))
	}
	return n
}

// TestWorkerWidth pins the worker-facing width surface.
func TestWorkerWidth(t *testing.T) {
	for _, width := range []int{4, 8} {
		wk := NewWorkerWidth(10, width)
		if wk.Width() != width {
			t.Fatalf("NewWorkerWidth(10, %d).Width() = %d", width, wk.Width())
		}
		wk.Release()
	}
	wk := NewWorker(10)
	if wk.Width() != DefaultLaneWidth() {
		t.Fatalf("NewWorker width = %d, want default %d", wk.Width(), DefaultLaneWidth())
	}
	wk.Release()
}
