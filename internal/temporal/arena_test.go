package temporal

import (
	"testing"

	"repro/internal/linkstream"
)

// arenaEvents builds a sorted, canonicalised event slice of roughly the
// requested size for arena tests.
func arenaEvents(t *testing.T, n, events int, T int64, seed int64) []linkstream.Event {
	t.Helper()
	s := randomStream(t, n, events, T, seed)
	s.Sort()
	return linkstream.Canonical(s.Events())
}

// csrEqual compares the public arrays of two CSRs.
func csrEqual(t *testing.T, got, want *CSR, label string) {
	t.Helper()
	if len(got.Keys) != len(want.Keys) || len(got.Off) != len(want.Off) || len(got.Ends) != len(want.Ends) {
		t.Fatalf("%s: shape (%d,%d,%d) vs (%d,%d,%d)", label,
			len(got.Keys), len(got.Off), len(got.Ends), len(want.Keys), len(want.Off), len(want.Ends))
	}
	for i := range want.Keys {
		if got.Keys[i] != want.Keys[i] {
			t.Fatalf("%s: Keys[%d] = %d, want %d", label, i, got.Keys[i], want.Keys[i])
		}
	}
	for i := range want.Off {
		if got.Off[i] != want.Off[i] {
			t.Fatalf("%s: Off[%d] = %d, want %d", label, i, got.Off[i], want.Off[i])
		}
	}
	for i := range want.Ends {
		if got.Ends[i] != want.Ends[i] {
			t.Fatalf("%s: Ends[%d] = %d, want %d", label, i, got.Ends[i], want.Ends[i])
		}
	}
}

// TestBuildCSRArenaMatchesBuildCSR checks that arena-backed builds are
// bit-identical to plain builds, across repeated build/recycle cycles
// that exercise both the fresh-allocation and the reuse path.
func TestBuildCSRArenaMatchesBuildCSR(t *testing.T) {
	const n = 12
	events := arenaEvents(t, n, 400, 900, 31)
	var scratch CSRScratch
	ResetArenaStats()
	for cycle := 0; cycle < 3; cycle++ {
		for _, delta := range []int64{7, 40, 300} {
			want := BuildCSR(events, events[0].T, delta, &scratch)
			got := BuildCSRArena(events, events[0].T, delta, n, &scratch)
			if !got.ArenaBacked() {
				t.Fatalf("cycle %d delta %d: BuildCSRArena not arena-backed", cycle, delta)
			}
			csrEqual(t, got, want, "arena vs plain")
			cfg := Config{N: n, Workers: 2}
			wantTrips := CollectTripsCSR(cfg, want)
			gotTrips := CollectTripsCSR(cfg, got)
			if len(wantTrips) != len(gotTrips) {
				t.Fatalf("cycle %d delta %d: %d trips vs %d", cycle, delta, len(gotTrips), len(wantTrips))
			}
			for i := range wantTrips {
				if gotTrips[i] != wantTrips[i] {
					t.Fatalf("cycle %d delta %d: trip %d differs", cycle, delta, i)
				}
			}
			RecycleCSR(got)
		}
	}
	handed, recycled, reused := ArenaStats()
	if handed != 9 || recycled != 9 {
		t.Fatalf("handed %d recycled %d, want 9 each", handed, recycled)
	}
	// All nine builds share one (nodes, events) class; after the first
	// hands a fresh arena, every later build must reuse it.
	if reused != 8 {
		t.Fatalf("reused = %d, want 8", reused)
	}
}

// TestBuildCSRArenaEmptyEvents pins the unpooled degenerate path: an
// empty event slice gets a plain CSR, so the accounting cannot leak
// through builds that never hand an arena out.
func TestBuildCSRArenaEmptyEvents(t *testing.T) {
	ResetArenaStats()
	var scratch CSRScratch
	c := BuildCSRArena(nil, 0, 10, 5, &scratch)
	if c.ArenaBacked() || c.ArenaReused() {
		t.Fatalf("empty build is arena-backed")
	}
	RecycleCSR(c) // must be a no-op
	RecycleCSR(nil)
	if handed, recycled, _ := ArenaStats(); handed != 0 || recycled != 0 {
		t.Fatalf("empty build touched the counters: handed %d recycled %d", handed, recycled)
	}
}

// TestRecycleCSRDetachesSlices makes use-after-recycle fail fast.
func TestRecycleCSRDetachesSlices(t *testing.T) {
	events := arenaEvents(t, 8, 100, 300, 32)
	var scratch CSRScratch
	c := BuildCSRArena(events, events[0].T, 20, 8, &scratch)
	c.recipTable() // force the reciprocal table so recycling captures it
	RecycleCSR(c)
	if c.Keys != nil || c.Off != nil || c.Ends != nil || c.recip != nil || c.arena != nil {
		t.Fatalf("recycled CSR still holds backing arrays: %+v", c)
	}
}

// TestArenaRecipReuse checks that the reciprocal table — the largest
// stream-keyed allocation — survives the recycle round-trip: a second
// build of the same class finds the previous table's capacity in its
// arena and recomputes values in place.
func TestArenaRecipReuse(t *testing.T) {
	events := arenaEvents(t, 8, 150, 400, 33)
	var scratch CSRScratch
	c1 := BuildCSRArena(events, events[0].T, 20, 8, &scratch)
	r1 := c1.recipTable()
	if len(r1) == 0 {
		t.Fatal("no reciprocal table")
	}
	RecycleCSR(c1)
	c2 := BuildCSRArena(events, events[0].T, 20, 8, &scratch)
	if !c2.ArenaReused() {
		t.Fatal("second build did not reuse the arena")
	}
	r2 := c2.recipTable()
	if &r1[0] != &r2[0] {
		t.Fatal("reciprocal table was reallocated despite matching capacity")
	}
	for i := range r2 {
		if r2[i] != r1[i] {
			t.Fatalf("recomputed reciprocal %d differs", i)
		}
	}
	RecycleCSR(c2)
}

// TestArenaEvictionHugeThenTiny pins the temporal-pooling edge case the
// shelf bound exists for: one huge period followed by thousands of tiny
// ones must not pin the huge class's arena — its shelf is evicted once
// the class has been idle for arenaEvictAfter pool operations, and a
// later huge build allocates fresh.
func TestArenaEvictionHugeThenTiny(t *testing.T) {
	const n = 16
	huge := arenaEvents(t, n, 60_000, 200_000, 34)
	tiny := arenaEvents(t, n, 40, 100, 35)
	var scratch CSRScratch

	hc := BuildCSRArena(huge, huge[0].T, 1000, n, &scratch)
	hugeClass := hc.class
	RecycleCSR(hc)

	// Shelved: an immediate rebuild of the class reuses it.
	arenaMu.Lock()
	if sh := arenaShelves[hugeClass]; sh == nil || len(sh.arenas) != 1 {
		arenaMu.Unlock()
		t.Fatal("huge arena not shelved after recycle")
	}
	arenaMu.Unlock()

	// Churn the pool with tiny periods of a different class until the
	// huge shelf crosses the idle bound.
	tinyClass := arenaClassFor(n, len(tiny))
	if tinyClass == hugeClass {
		t.Fatalf("workloads collapsed into one class %+v", tinyClass)
	}
	for i := 0; i <= arenaEvictAfter; i++ {
		c := BuildCSRArena(tiny, tiny[0].T, 10, n, &scratch)
		RecycleCSR(c)
	}

	arenaMu.Lock()
	_, still := arenaShelves[hugeClass]
	arenaMu.Unlock()
	if still {
		t.Fatalf("huge class still shelved after %d pool operations of tiny churn", 2*(arenaEvictAfter+1))
	}

	ResetArenaStats()
	hc = BuildCSRArena(huge, huge[0].T, 1000, n, &scratch)
	if hc.ArenaReused() {
		t.Fatal("huge build reused an arena that should have been evicted")
	}
	RecycleCSR(hc)
	if handed, recycled, _ := ArenaStats(); handed != 1 || recycled != 1 {
		t.Fatalf("handed %d recycled %d", handed, recycled)
	}
}

// TestArenaShelfCap bounds how many idle arenas one class keeps.
func TestArenaShelfCap(t *testing.T) {
	events := arenaEvents(t, 8, 120, 300, 36)
	var scratch CSRScratch
	csrs := make([]*CSR, arenaShelfCap+3)
	for i := range csrs {
		csrs[i] = BuildCSRArena(events, events[0].T, 15, 8, &scratch)
	}
	class := csrs[0].class
	for _, c := range csrs {
		RecycleCSR(c)
	}
	arenaMu.Lock()
	defer arenaMu.Unlock()
	sh := arenaShelves[class]
	if sh == nil || len(sh.arenas) != arenaShelfCap {
		got := 0
		if sh != nil {
			got = len(sh.arenas)
		}
		t.Fatalf("shelf holds %d arenas, want cap %d", got, arenaShelfCap)
	}
}
