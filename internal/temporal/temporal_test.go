package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/snapshot"
)

// figure1Series aggregates the paper's Figure 1 stream at ∆ = 4 into
// three windows (indices 0, 1, 2).
func figure1Series(t *testing.T) (*linkstream.Stream, *series.Series) {
	t.Helper()
	s := linkstream.New()
	adds := []struct {
		u, v string
		t    int64
	}{
		{"a", "b", 2}, {"e", "d", 1}, {"d", "c", 4},
		{"c", "b", 5}, {"e", "a", 6}, {"a", "b", 8},
		{"d", "e", 9}, {"c", "b", 10}, {"b", "a", 11},
	}
	for _, a := range adds {
		if err := s.Add(a.u, a.v, a.t); err != nil {
			t.Fatal(err)
		}
	}
	g, err := series.Aggregate(s, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func nodeID(t *testing.T, s *linkstream.Stream, name string) int32 {
	t.Helper()
	id, ok := s.NodeID(name)
	if !ok {
		t.Fatalf("node %q not interned", name)
	}
	return id
}

func findTrip(trips []Trip, u, v int32, dep, arr int64) *Trip {
	for i := range trips {
		t := &trips[i]
		if t.U == u && t.V == v && t.Dep == dep && t.Arr == arr {
			return t
		}
	}
	return nil
}

func TestFigure1SeriesTrips(t *testing.T) {
	s, g := figure1Series(t)
	cfg := Config{N: g.N, Workers: 1}
	trips := CollectTrips(cfg, SeriesLayers(g))

	c, a, b := nodeID(t, s, "c"), nodeID(t, s, "a"), nodeID(t, s, "b")
	e := nodeID(t, s, "e")

	// c -> b at window 1 then b -> a at window 2: minimal trip (c,a,1,2)
	// with 2 hops, occupancy 2/2 = 1.
	tr := findTrip(trips, c, a, 1, 2)
	if tr == nil {
		t.Fatalf("missing minimal trip c->a over windows [1,2]; trips: %v", trips)
	}
	if tr.Hops != 2 {
		t.Fatalf("trip c->a hops = %d, want 2", tr.Hops)
	}
	if occ := tr.Occupancy(); occ != 1 {
		t.Fatalf("trip c->a occupancy = %v, want 1", occ)
	}

	// The paper's dark-blue path: e reaches b (e-a in window 1, a-b in
	// window 2).
	if tr := findTrip(trips, e, b, 1, 2); tr == nil {
		t.Fatalf("missing minimal trip e->b over windows [1,2]")
	}

	// Direct link trips have occupancy 1 and a single hop, e.g. a-b in
	// window 0 departing at window 0.
	if tr := findTrip(trips, a, b, 0, 0); tr == nil || tr.Hops != 1 {
		t.Fatalf("missing 1-hop trip a->b at window 0: %+v", tr)
	}
}

func TestSameWindowRestriction(t *testing.T) {
	// Two links that only ever occur inside one window: no temporal path
	// in the series (Remark 1), although the stream has one.
	s := linkstream.New()
	if err := s.Add("d", "x", 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("x", "b", 10); err != nil {
		t.Fatal(err)
	}
	g, err := series.Aggregate(s, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: g.N, Workers: 1}
	trips := CollectTrips(cfg, SeriesLayers(g))
	d, b := nodeID(t, s, "d"), nodeID(t, s, "b")
	for _, tr := range trips {
		if tr.U == d && tr.V == b {
			t.Fatalf("series should not contain d->b trip, got %+v", tr)
		}
	}
	// The raw stream does have the transition.
	streamTrips := CollectTrips(cfg, StreamLayers(s, false))
	if tr := findTrip(streamTrips, d, b, 9, 10); tr == nil || tr.Hops != 2 {
		t.Fatalf("stream should contain d->b transition: %+v", tr)
	}
}

func TestDirectedRespectsOrientation(t *testing.T) {
	s := linkstream.New()
	if err := s.Add("a", "b", 1); err != nil { // a -> b
		t.Fatal(err)
	}
	if err := s.Add("b", "c", 2); err != nil { // b -> c
		t.Fatal(err)
	}
	layers := StreamLayers(s, true)
	cfg := Config{N: s.NumNodes(), Directed: true, Workers: 1}
	trips := CollectTrips(cfg, layers)
	aID, cID := nodeID(t, s, "a"), nodeID(t, s, "c")
	if tr := findTrip(trips, aID, cID, 1, 2); tr == nil {
		t.Fatal("directed a->c trip missing")
	}
	if tr := findTrip(trips, cID, aID, 1, 2); tr != nil {
		t.Fatalf("c->a should be unreachable in directed stream: %+v", tr)
	}
	// In the undirected reading the edge a->b is usable from b, so the
	// 1-hop trip b->a exists; in the directed reading it does not.
	bID := nodeID(t, s, "b")
	und := CollectTrips(Config{N: s.NumNodes(), Workers: 1}, StreamLayers(s, false))
	if tr := findTrip(und, bID, aID, 1, 1); tr == nil {
		t.Fatal("undirected b->a trip missing")
	}
	if tr := findTrip(trips, bID, aID, 1, 1); tr != nil {
		t.Fatalf("directed stream should not allow b->a: %+v", tr)
	}
}

func TestOccupancyBounds(t *testing.T) {
	_, g := figure1Series(t)
	occ := Occupancies(Config{N: g.N, Workers: 1}, SeriesLayers(g))
	if len(occ) == 0 {
		t.Fatal("no occupancies")
	}
	for _, o := range occ {
		if o <= 0 || o > 1 {
			t.Fatalf("occupancy %v outside (0,1]", o)
		}
	}
}

func TestFullyAggregatedOccupancyIsOne(t *testing.T) {
	// With a single window every minimal trip is a single link with
	// occupancy exactly 1 (the paper's ∆ = T limit).
	s, _ := figure1Series(t)
	g, err := series.Aggregate(s, 1_000_000, false)
	if err != nil {
		t.Fatal(err)
	}
	occ := Occupancies(Config{N: g.N, Workers: 1}, SeriesLayers(g))
	if len(occ) == 0 {
		t.Fatal("no occupancies")
	}
	for _, o := range occ {
		if o != 1 {
			t.Fatalf("occupancy %v, want 1 in totally aggregated series", o)
		}
	}
}

func TestEmptyAndTrivialInputs(t *testing.T) {
	if trips := CollectTrips(Config{N: 0}, nil); len(trips) != 0 {
		t.Fatalf("no-node graph has trips: %v", trips)
	}
	if trips := CollectTrips(Config{N: 3}, nil); len(trips) != 0 {
		t.Fatalf("no-layer graph has trips: %v", trips)
	}
	d := Distances(Config{N: 3}, nil, 0, 1)
	if d.Count != 0 {
		t.Fatalf("no-layer distances = %+v", d)
	}
}

func TestStreamLayersDedup(t *testing.T) {
	s := linkstream.New()
	for i := 0; i < 3; i++ {
		if err := s.Add("a", "b", 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add("b", "a", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", "b", 9); err != nil {
		t.Fatal(err)
	}
	layers := StreamLayers(s, false)
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if layers[0].Key != 7 || len(layers[0].Edges) != 1 {
		t.Fatalf("layer 0 = %+v, want single edge at t=7", layers[0])
	}
	dirLayers := StreamLayers(s, true)
	if len(dirLayers[0].Edges) != 2 {
		t.Fatalf("directed layer 0 has %d edges, want 2", len(dirLayers[0].Edges))
	}
}

func TestSeriesLayersKeys(t *testing.T) {
	_, g := figure1Series(t)
	layers := SeriesLayers(g)
	if len(layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(layers))
	}
	for i, l := range layers {
		if l.Key != int64(i) {
			t.Fatalf("layer %d key = %d", i, l.Key)
		}
	}
}

func TestShortestTransitions(t *testing.T) {
	s, _ := figure1Series(t)
	cfg := Config{N: s.NumNodes(), Workers: 1}
	trans := ShortestTransitions(cfg, StreamLayers(s, false))
	if len(trans) == 0 {
		t.Fatal("figure 1 stream should have shortest transitions")
	}
	for _, tr := range trans {
		if tr.Hops != 2 {
			t.Fatalf("transition with hops %d: %+v", tr.Hops, tr)
		}
		if tr.Dep >= tr.Arr {
			t.Fatalf("transition with non-increasing times: %+v", tr)
		}
	}
	// c -> b at 5, b -> a at 8 gives the shortest transition (c,a,5,8)?
	// No: (c,b,10),(b,a,11) is strictly inside no... (c,a,10,11) is a
	// 2-hop minimal trip.
	c, a := nodeID(t, s, "c"), nodeID(t, s, "a")
	if tr := findTrip(trans, c, a, 10, 11); tr == nil {
		t.Fatalf("missing shortest transition (c,a,10,11): %v", trans)
	}
}

// randomLayers builds a random small layered graph for property tests.
func randomLayers(rng *rand.Rand, n, maxLayers, maxEdges int) []Layer {
	L := rng.Intn(maxLayers) + 1
	var layers []Layer
	key := int64(0)
	for i := 0; i < L; i++ {
		key += int64(rng.Intn(3) + 1)
		m := rng.Intn(maxEdges + 1)
		var edges []snapshot.Edge
		seen := map[snapshot.Edge]bool{}
		for j := 0; j < m; j++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			e := snapshot.Edge{U: u, V: v}.Canon()
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		if len(edges) == 0 {
			continue
		}
		layers = append(layers, Layer{Key: key, Edges: edges})
	}
	return layers
}

// Property: the engine's minimal trips match the exhaustive reference on
// random instances, both undirected and directed.
func TestQuickTripsMatchBruteForce(t *testing.T) {
	f := func(seed int64, dirRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		layers := randomLayers(rng, n, 6, 5)
		cfg := Config{N: n, Directed: dirRaw, Workers: 1}
		got := CollectTrips(cfg, layers)
		want := bruteTrips(n, layers, dirRaw)
		sortTrips(got)
		sortTrips(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel and sequential sweeps agree.
func TestQuickParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		layers := randomLayers(rng, n, 8, 6)
		seq := CollectTrips(Config{N: n, Workers: 1}, layers)
		par := CollectTrips(Config{N: n, Workers: 4}, layers)
		sortTrips(seq)
		sortTrips(par)
		if len(seq) != len(par) {
			return false
		}
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distances matches direct summation over all start times.
func TestQuickDistancesMatchBruteForce(t *testing.T) {
	f := func(seed int64, dirRaw bool, plusRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		layers := randomLayers(rng, n, 5, 4)
		durPlus := int64(0)
		if plusRaw {
			durPlus = 1
		}
		cfg := Config{N: n, Directed: dirRaw, Workers: 1}
		got := Distances(cfg, layers, 0, durPlus)
		want := bruteDistances(n, layers, dirRaw, 0, durPlus)
		if got.Count != want.Count {
			return false
		}
		const eps = 1e-9
		return abs(got.MeanTime-want.MeanTime) < eps && abs(got.MeanHops-want.MeanHops) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: minimal trips are non-nested per ordered pair — both
// departures and arrivals are strictly increasing when sorted.
func TestQuickTripsNonNested(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		layers := randomLayers(rng, n, 10, 6)
		trips := CollectTrips(Config{N: n, Workers: 1}, layers)
		sortTrips(trips)
		for i := 1; i < len(trips); i++ {
			a, b := trips[i-1], trips[i]
			if a.U == b.U && a.V == b.V {
				if !(a.Dep < b.Dep && a.Arr < b.Arr) {
					return false
				}
			}
		}
		for _, tr := range trips {
			if tr.Hops < 1 || tr.Dep > tr.Arr {
				return false
			}
			if o := tr.Occupancy(); o <= 0 || o > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
