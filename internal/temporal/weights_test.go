package temporal

import (
	"math/rand"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/snapshot"
)

// mapWeights is the obvious reference for EdgeWeightsCSR: count the
// contacts of every (window, packed edge) pair in nested maps.
func mapWeights(events []linkstream.Event, t0, delta int64) map[int64]map[uint64]int32 {
	counts := make(map[int64]map[uint64]int32)
	for _, e := range events {
		k := (e.T - t0) / delta
		m := counts[k]
		if m == nil {
			m = make(map[uint64]int32)
			counts[k] = m
		}
		m[snapshot.PackEdge(e.U, e.V)]++
	}
	return counts
}

// checkWeights asserts the EdgeWeightsCSR contract against the map
// reference: one weight per CSR edge, aligned index-for-index, every
// weight ≥ 1, and each layer summing to its window's event count.
func checkWeights(t *testing.T, events []linkstream.Event, t0, delta int64, c *CSR, w []int32) {
	t.Helper()
	if len(w) != c.Off[len(c.Off)-1] {
		t.Fatalf("len(weights) = %d, want total edge count %d", len(w), c.Off[len(c.Off)-1])
	}
	ref := mapWeights(events, t0, delta)
	var total int64
	for li := 0; li < c.NumLayers(); li++ {
		m := ref[c.Keys[li]]
		var layerSum int64
		for e := c.Off[li]; e < c.Off[li+1]; e++ {
			if w[e] < 1 {
				t.Fatalf("layer %d edge %d: weight %d < 1", li, e, w[e])
			}
			key := snapshot.PackEdge(c.Ends[2*e], c.Ends[2*e+1])
			if want := m[key]; w[e] != want {
				t.Fatalf("layer %d edge %d (key %d): weight %d, map reference %d", li, e, key, w[e], want)
			}
			layerSum += int64(w[e])
		}
		var winEvents int64
		for _, c := range m {
			winEvents += int64(c)
		}
		if layerSum != winEvents {
			t.Fatalf("layer %d: weights sum to %d, window has %d events", li, layerSum, winEvents)
		}
		total += layerSum
	}
	if total != int64(len(events)) {
		t.Fatalf("weights sum to %d over all layers, want event count %d", total, len(events))
	}
}

func TestEdgeWeightsCSRMatchesMapCount(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := int32(2 + rng.Intn(9))
		events := make([]linkstream.Event, 0, 80)
		for i := 0; i < 1+rng.Intn(80); i++ {
			u := rng.Int31n(n)
			v := rng.Int31n(n - 1)
			if v >= u {
				v++
			}
			events = append(events, linkstream.Event{T: rng.Int63n(500), U: u, V: v})
		}
		linkstream.SortEvents(events)
		t0 := events[0].T
		for _, delta := range []int64{1, 7, 50, 500} {
			var bs, ws CSRScratch
			c := BuildCSR(events, t0, delta, &bs)
			w := EdgeWeightsCSR(events, t0, delta, c, &ws)
			checkWeights(t, events, t0, delta, c, w)
		}
	}
}

// FuzzEdgeWeights fuzzes the weighted-aggregation accumulator: decode
// an arbitrary event list from the input, build the CSR and its
// weights, and check the alignment and conservation invariants against
// the map reference.
func FuzzEdgeWeights(f *testing.F) {
	f.Add([]byte{3, 0, 1, 5, 0, 1, 2, 9, 0, 2, 0, 3, 0})
	f.Add([]byte{1, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0})
	f.Add([]byte{60, 4, 3, 200, 17, 3, 4, 201, 220})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		delta := 1 + int64(data[0]%64)
		data = data[1:]
		var events []linkstream.Event
		for len(data) >= 4 {
			u := int32(data[0] % 8)
			v := int32(data[1] % 8)
			tt := int64(data[2]) | int64(data[3])<<8
			data = data[4:]
			if u == v {
				continue
			}
			events = append(events, linkstream.Event{T: tt, U: u, V: v})
		}
		if len(events) == 0 {
			return
		}
		linkstream.SortEvents(events)
		t0 := events[0].T
		var bs, ws CSRScratch
		c := BuildCSR(events, t0, delta, &bs)
		w := EdgeWeightsCSR(events, t0, delta, c, &ws)
		checkWeights(t, events, t0, delta, c, w)
	})
}
