package temporal

// This file implements the flat CSR layer arena the engine runs on: one
// contiguous []int32 endpoint array plus per-layer offsets, built once
// per aggregation period, so the inner relax loop of the backward sweep
// walks cache-linear memory instead of []Layer -> []snapshot.Edge
// pointer chains. The slice-based sweep in temporal.go is retained as
// the reference implementation for equivalence tests; every public
// entry point routes through the CSR engine.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/snapshot"
)

// CSR is a layered dynamic graph in compressed sparse row form. Layer
// li covers edge indices Off[li]..Off[li+1]; edge e has endpoints
// Ends[2e] and Ends[2e+1]. Keys holds the strictly increasing time key
// of each layer (window indices for a series, raw timestamps for a
// stream). Edge sets are deduplicated per layer; for undirected
// analyses endpoints are canonicalised (U < V) at build time.
type CSR struct {
	Keys []int64
	Off  []int // len(Keys)+1
	Ends []int32

	// recip caches 1/(arr-dep+1) for every possible trip duration, so
	// the occupancy hot path multiplies instead of dividing. Built
	// lazily; nil when the key span is too large to tabulate.
	recipOnce sync.Once
	recip     []float64

	// arena links a pooled CSR back to its backing-array set; nil for
	// plain-built CSRs. reused records whether that set came off a
	// shelf. See BuildCSRArena/RecycleCSR (arena.go).
	arena  *csrArena
	class  arenaClass
	reused bool
}

// ArenaBacked reports whether the CSR's backing arrays belong to the
// size-classed arena pool and are still attached (BuildCSRArena built
// it and RecycleCSR has not yet reclaimed it).
func (c *CSR) ArenaBacked() bool { return c.arena != nil }

// ArenaReused reports whether the CSR's arena was reused from a shelf
// rather than freshly allocated; always false for plain-built CSRs.
func (c *CSR) ArenaReused() bool { return c.reused }

// maxRecipSpan bounds the reciprocal table: series keys are window
// indices (tiny spans), stream keys are raw timestamps (tabulated up to
// 4M entries / 32 MB; beyond that the sweep falls back to division).
const maxRecipSpan = 1 << 22

// recipTable returns the 1/duration lookup table, or nil when the key
// span exceeds maxRecipSpan. Arena-backed CSRs reuse the arena's table
// buffer when its capacity suffices (the values are recomputed — only
// the allocation is saved, and for stream-keyed periods it is the
// single largest one).
func (c *CSR) recipTable() []float64 {
	c.recipOnce.Do(func() {
		if len(c.Keys) == 0 {
			return
		}
		span := c.Keys[len(c.Keys)-1] - c.Keys[0]
		if span >= maxRecipSpan {
			return
		}
		var t []float64
		if a := c.arena; a != nil && int64(cap(a.recip)) > span {
			t = a.recip[:span+1]
		} else {
			t = make([]float64, span+1)
		}
		for d := range t {
			t[d] = 1 / float64(d+1)
		}
		c.recip = t
	})
	return c.recip
}

// NumLayers returns the number of (non-empty) layers.
func (c *CSR) NumLayers() int { return len(c.Keys) }

// NumEdges returns the total number of edges over all layers.
func (c *CSR) NumEdges() int { return len(c.Ends) / 2 }

// FromLayers flattens slice-based layers into a CSR arena. Layers must
// be sorted by strictly increasing Key with deduplicated edge sets (the
// invariant SeriesLayers and StreamLayers already guarantee).
func FromLayers(layers []Layer) *CSR {
	m := 0
	for _, l := range layers {
		m += len(l.Edges)
	}
	c := &CSR{
		Keys: make([]int64, len(layers)),
		Off:  make([]int, len(layers)+1),
		Ends: make([]int32, 0, 2*m),
	}
	for i, l := range layers {
		c.Keys[i] = l.Key
		c.Off[i] = len(c.Ends) / 2
		for _, e := range l.Edges {
			c.Ends = append(c.Ends, e.U, e.V)
		}
	}
	c.Off[len(layers)] = len(c.Ends) / 2
	return c
}

// Layers materialises the CSR back into slice-based layers (testing and
// interop; the engine itself never needs this).
func (c *CSR) Layers() []Layer {
	out := make([]Layer, len(c.Keys))
	for i := range c.Keys {
		lo, hi := c.Off[i], c.Off[i+1]
		edges := make([]snapshot.Edge, 0, hi-lo)
		for e := lo; e < hi; e++ {
			edges = append(edges, snapshot.Edge{U: c.Ends[2*e], V: c.Ends[2*e+1]})
		}
		out[i] = Layer{Key: c.Keys[i], Edges: edges}
	}
	return out
}

// SeriesCSR builds the CSR arena of an aggregated series directly,
// without materialising []Layer.
func SeriesCSR(g *series.Series) *CSR {
	c := &CSR{
		Keys: make([]int64, len(g.Windows)),
		Off:  make([]int, len(g.Windows)+1),
		Ends: make([]int32, 0, 2*g.TotalEdges),
	}
	for i, w := range g.Windows {
		c.Keys[i] = w.K
		c.Off[i] = len(c.Ends) / 2
		for _, e := range w.Edges {
			c.Ends = append(c.Ends, e.U, e.V)
		}
	}
	c.Off[len(g.Windows)] = len(c.Ends) / 2
	return c
}

// CSRScratch is the reusable build scratch of BuildCSR: one uint64 sort
// buffer sized to the largest layer seen so far. A single scratch
// serialises builds; use one per goroutine.
type CSRScratch struct {
	keys []uint64
}

// StreamCSR groups the events of the stream by timestamp into a CSR
// with raw timestamps as keys, canonicalising endpoints when directed
// is false. The stream is sorted as a side effect.
func StreamCSR(s *linkstream.Stream, directed bool) *CSR {
	s.Sort()
	events := s.Events()
	if !directed {
		events = linkstream.Canonical(events)
	}
	var scratch CSRScratch
	return BuildCSR(events, 0, 1, &scratch)
}

// BuildCSR bucketises pre-sorted events into windows of length delta
// starting at t0 (layer key = (T-t0)/delta) and deduplicates every
// window by sort-and-compact, in one O(M log w) pass with w the largest
// window population. Events must be sorted by time and already
// canonicalised for undirected analyses (linkstream.Canonical); with
// delta == 1 and t0 == 0 the keys are the raw timestamps, which is the
// link-stream layering. scratch is reused across calls to avoid
// per-delta allocation spikes.
func BuildCSR(events []linkstream.Event, t0, delta int64, scratch *CSRScratch) *CSR {
	c := &CSR{}
	if len(events) == 0 {
		c.Off = []int{0}
		return c
	}
	c.Ends = make([]int32, 0, 2*len(events))
	buildCSRInto(c, events, t0, delta, scratch)
	return c
}

// buildCSRInto runs the bucketise-and-compact build of BuildCSR into
// c's (possibly arena-backed, zero-length) Keys/Off/Ends slices. events
// must be non-empty.
func buildCSRInto(c *CSR, events []linkstream.Event, t0, delta int64, scratch *CSRScratch) {
	i := 0
	for i < len(events) {
		k := (events[i].T - t0) / delta
		end := i
		for end < len(events) && (events[end].T-t0)/delta == k {
			end++
		}
		buf := scratch.keys[:0]
		for _, e := range events[i:end] {
			buf = append(buf, snapshot.PackEdge(e.U, e.V))
		}
		scratch.keys = buf
		c.Keys = append(c.Keys, k)
		c.Off = append(c.Off, len(c.Ends)/2)
		for _, key := range snapshot.SortCompactEdgeKeys(buf) {
			c.Ends = append(c.Ends, int32(key>>32), int32(uint32(key)))
		}
		i = end
	}
	c.Off = append(c.Off, len(c.Ends)/2)
}

// occChunkLen is the fixed capacity of occupancy sink chunks: big
// enough that chunk bookkeeping vanishes, small enough that partially
// filled chunks waste little (512 KiB per chunk).
const occChunkLen = 1 << 16

// The sweep state packs (arrival layer index, hop count) into one
// int64: arrIdx<<32 | hops. Arrival times only ever compare against
// each other, and layer keys are strictly increasing, so comparing
// layer indices is comparing arrivals — and the engine's lexicographic
// "earlier arrival, then fewer hops" improvement test collapses to a
// single integer comparison on the packed value. "One more hop through
// the same relay" is packed+1. Both fields are non-negative and fit 31
// bits (layer count and hop count are bounded by the edge total), so
// the packing is order-preserving.
const unreachPacked = int64(math.MaxInt32) << 32

// noCand is the resting value of cand slots. The commit phase restores
// it for every touched node, so between layers the whole cand array is
// at rest without any epoch bookkeeping, and "is this the node's first
// candidate this layer" is one compare against the slot itself.
const noCand = int64(math.MaxInt64)

// The blocked sweep processes width destinations per pass over the
// layers, with width one of the compiled kernel widths (lanes.go).
// Blocking amortises the edge stream (loads, loop control) across
// lanes: one (u, v) read feeds width independent relaxations whose
// state interleaves in adjacent slots, so a node's lanes share a cache
// line (all eight lanes of the 8-wide kernel span exactly one 64-byte
// line).

// sweepState is the per-worker scratch of the CSR sweep: 8 bytes of
// standing state and 8 bytes of per-layer candidate state per node (per
// lane in the blocked occupancy sweep). The occupancy sink is a list of
// fixed-size chunks, never a doubling slice: growing a flat slice
// re-copies every element O(log n) times, which profiled as ~25% of the
// whole sweep.
type sweepState struct {
	width     int     // lane width of the blocked sweep (4 or 8)
	shift     uint    // log2(width): node = slot >> shift, lane = slot & (width-1)
	node      []int64 // packed (arrIdx, hops); unreachPacked if unreachable
	cand      []int64 // packed per-layer candidate; noCand at rest
	seg       []int32 // layer index at which node's (arr, hop) became active
	touched   []int32
	nodeB     []int64              // width-lane standing state, slot width*node+lane
	candB     []int64              // width-lane candidates; noCand at rest
	segB      []int32              // per-slot layer index of the standing state (distance segments)
	occ       []float64            // active occupancy chunk, used when collectOcc
	occChunks [][]float64          // completed chunks
	trips     []Trip               // trip sink for CollectTrips
	tripsB    [MaxLaneWidth][]Trip // per-lane trip sinks of the full block sweep (ownership handed to the caller)
}

func newSweepState(n, width int) *sweepState {
	st := &sweepState{
		width:   width,
		shift:   laneShift(width),
		node:    make([]int64, n),
		cand:    make([]int64, n),
		seg:     make([]int32, n),
		touched: make([]int32, 0, 64),
	}
	for i := range st.cand {
		st.cand[i] = noCand
	}
	return st
}

// statePool recycles sweep states across calls (and benchmark
// iterations); entries of the wrong size or lane width are dropped on
// Get.
var statePool sync.Pool

func getSweepState(n, width int) *sweepState {
	if v := statePool.Get(); v != nil {
		st := v.(*sweepState)
		if len(st.node) == n && st.width == width {
			return st
		}
	}
	return newSweepState(n, width)
}

func putSweepState(st *sweepState) {
	st.occ = nil
	st.occChunks = nil
	st.trips = nil
	statePool.Put(st)
}

// takeOcc flushes the active chunk and hands the caller every completed
// chunk plus the total value count, resetting the sink.
func (st *sweepState) takeOcc() (chunks [][]float64, total int) {
	if len(st.occ) > 0 {
		st.occChunks = append(st.occChunks, st.occ)
	}
	st.occ = nil
	chunks = st.occChunks
	st.occChunks = nil
	for _, ch := range chunks {
		total += len(ch)
	}
	return chunks, total
}

// chunkPool recycles occupancy chunks: a fresh 512 KiB allocation is
// zeroed by the runtime, a pooled one is not, and the sweep emits tens
// of chunks per call.
var chunkPool sync.Pool

// tripLanePool recycles per-destination trip buffers (the lanes of the
// blocked sweep). Streaming consumers hand lanes back with RecycleTrips
// as soon as they have scored them, so a long enumeration's steady-state
// allocation count is bounded by the number of in-flight lanes, not by
// the total trip population.
var tripLanePool sync.Pool

// getTripLane returns a pooled zero-length trip buffer, or nil (append
// allocates on first use).
func getTripLane() []Trip {
	if v := tripLanePool.Get(); v != nil {
		return v.([]Trip)[:0]
	}
	return nil
}

// Trip-lane accounting: tripLanesHanded counts the lanes (cap > 0)
// whose ownership SweepFullBlock transferred to a consumer, and
// tripLanesRecycled the lanes handed back through RecycleTrips. After
// any complete engine run — finished, failed or cancelled — the two
// must balance: a surplus of handed lanes is a pool leak (buffers that
// will never amortise another sweep). The cancellation regression
// tests assert exactly that.
var tripLanesHanded, tripLanesRecycled atomic.Int64

// ResetTripLaneStats zeroes the trip-lane accounting counters.
func ResetTripLaneStats() {
	tripLanesHanded.Store(0)
	tripLanesRecycled.Store(0)
}

// TripLaneStats returns how many pooled trip lanes were handed to
// consumers and how many were recycled since the last
// ResetTripLaneStats.
func TripLaneStats() (handed, recycled int64) {
	return tripLanesHanded.Load(), tripLanesRecycled.Load()
}

// RecycleTrips returns per-destination trip slices — SweepFullBlock
// lanes, engine TripBlocks, stream trip runs — to the lane pool. The
// caller must not touch a slice after recycling it; consumers that keep
// trips must copy them out first.
func RecycleTrips(lanes ...[]Trip) {
	recycled := int64(0)
	for _, l := range lanes {
		if cap(l) > 0 {
			recycled++
			tripLanePool.Put(l[:0])
		}
	}
	tripLanesRecycled.Add(recycled)
}

func newChunk() []float64 {
	if v := chunkPool.Get(); v != nil {
		return v.([]float64)[:0]
	}
	return make([]float64, 0, occChunkLen)
}

// concatChunks assembles chunk lists into one exact-size slice and
// recycles the chunks.
func concatChunks(total int, chunkLists ...[][]float64) []float64 {
	out := make([]float64, 0, total)
	for _, chunks := range chunkLists {
		for _, ch := range chunks {
			out = append(out, ch...)
			chunkPool.Put(ch)
		}
	}
	return out
}

// run performs one backward sweep for destination dest over the CSR.
// It mirrors destState.run (the reference implementation, temporal.go)
// with the relax bodies inlined over the flat endpoint array. visit, if
// non nil, receives every minimal trip; acc, if non nil, accumulates
// the distance segments. The occupancy hot path does not come through
// here — it runs the blocked sweep, runOccBlock.
func (st *sweepState) run(c *CSR, dest int32, directed bool, visit func(u int32, dep, arr int64, hops int32), acc *distAcc) {
	node, cand, seg := st.node, st.cand, st.seg
	for i := range node {
		node[i] = unreachPacked
	}
	keys, off, ends := c.Keys, c.Off, c.Ends
	touched := st.touched[:0]

	for li := len(keys) - 1; li >= 0; li-- {
		key := keys[li]
		touched = touched[:0]
		// Pinning node[dest] to (li, 0 hops) folds the "relay is the
		// destination" case into the generic packed arithmetic: pv+1
		// yields (li, 1 hop), exactly "arrive at this layer in one
		// hop". The pin also keeps dest itself out of the candidate
		// set — every candidate packs an arrival layer >= li and at
		// least one hop, so no p undercuts li<<32. Likewise, an
		// unreachable relay yields unreachPacked+1, which undercuts no
		// standing value either; both special cases vanish from the
		// loop, leaving two loads, an add and one compare per relax.
		node[dest] = int64(li) << 32
		edges := ends[2*off[li] : 2*off[li+1]]
		if directed {
			for j := 0; j+1 < len(edges); j += 2 {
				u, v := edges[j], edges[j+1]
				// A directed link (u, v) lets u move to v; the backward
				// state of v (arrival departing >= key+1) relaxes u.
				if p := node[v] + 1; p < node[u] {
					if c := cand[u]; p < c {
						if c == noCand {
							touched = append(touched, u)
						}
						cand[u] = p
					}
				}
			}
		} else {
			for j := 0; j+1 < len(edges); j += 2 {
				u, v := edges[j], edges[j+1]
				pu, pv := node[u], node[v]
				if p := pv + 1; p < pu {
					if c := cand[u]; p < c {
						if c == noCand {
							touched = append(touched, u)
						}
						cand[u] = p
					}
				}
				if p := pu + 1; p < pv {
					if c := cand[v]; p < c {
						if c == noCand {
							touched = append(touched, v)
						}
						cand[v] = p
					}
				}
			}
		}
		for _, x := range touched {
			p, old := cand[x], node[x]
			cand[x] = noCand
			node[x] = p
			if acc != nil {
				if old != unreachPacked {
					acc.addSegment(keys[old>>32], key+1, keys[seg[x]], int32(old))
				}
				seg[x] = int32(li)
			}
			if p>>32 < old>>32 {
				// Strictly earlier arrival: exactly one minimal trip.
				if visit != nil {
					visit(x, key, keys[p>>32], int32(p))
				}
			}
			// Otherwise: same earliest arrival with fewer hops when
			// departing earlier — not a minimal trip, but the hop count
			// feeds upstream relaxations and the dhops segments.
		}
	}
	st.touched = touched[:0]

	if acc != nil {
		for u := range node {
			if p := node[u]; int32(u) != dest && p != unreachPacked {
				acc.addSegment(keys[p>>32], acc.kMin, keys[seg[u]], int32(p))
			}
		}
	}
}

// runOccBlock sweeps up to width consecutive destinations (first,
// first+1, ...) in one pass over the layers, appending every minimal
// trip's occupancy to the chunk sink. Lane b holds destination first+b;
// lanes past ndests stay entirely unreachable (their pins are never
// set), so every relaxation on them fails the single compare and they
// are inert. Semantically this is exactly ndests independent runs of
// the single-destination sweep, for every lane width.
func (st *sweepState) runOccBlock(c *CSR, first int32, ndests int, directed bool) {
	n := len(st.node)
	width := st.width
	if st.nodeB == nil {
		st.nodeB = make([]int64, width*n)
		st.candB = make([]int64, width*n)
		for i := range st.candB {
			st.candB[i] = noCand
		}
	}
	nodeB, candB := st.nodeB, st.candB
	for i := range nodeB {
		nodeB[i] = unreachPacked
	}
	keys, off, ends := c.Keys, c.Off, c.Ends
	recip := c.recipTable()
	if st.occ == nil {
		st.occ = newChunk()
	}
	occ := st.occ
	touched := st.touched[:0]

	for li := len(keys) - 1; li >= 0; li-- {
		key := keys[li]
		touched = touched[:0]
		// Pin each lane's own destination to (li, 0 hops); see run.
		pin := int64(li) << 32
		for b := 0; b < ndests; b++ {
			nodeB[width*int(first+int32(b))+b] = pin
		}
		touched = st.relaxLanes(ends[2*off[li]:2*off[li+1]], directed, touched)
		for _, slot := range touched {
			p, old := candB[slot], nodeB[slot]
			candB[slot] = noCand
			nodeB[slot] = p
			if p>>32 < old>>32 {
				if len(occ) == occChunkLen {
					st.occChunks = append(st.occChunks, occ)
					occ = newChunk()
				}
				hop := float64(int32(p))
				if recip != nil {
					occ = append(occ, hop*recip[keys[p>>32]-key])
				} else {
					occ = append(occ, hop/float64(keys[p>>32]-key+1))
				}
			}
		}
	}
	st.touched = touched[:0]
	st.occ = occ
}

// runFullBlock is runOccBlock with the full product fan-out: the same
// blocked relax kernel, but the commit phase can additionally emit
// every minimal trip into per-lane sinks (st.tripsB, lane b holding
// destination first+b, so concatenating lanes in order yields the exact
// destination-major, departure-descending trip order of consecutive
// single-destination sweeps) and accumulate the distance segments of
// each lane into sink's per-destination slot. Per destination, the
// sequence of segment operations is identical to the single-destination
// sweep's — lanes evolve independently and a slot's commits interleave
// with other lanes' without reordering its own — so the accumulated
// floating-point sums match st.run bit for bit, at every lane width.
func (st *sweepState) runFullBlock(c *CSR, first int32, ndests int, directed bool, wantTrips, wantOcc bool, sink *DistSink) {
	n := len(st.node)
	width, shift := st.width, st.shift
	laneMask := int32(width - 1)
	if st.nodeB == nil {
		st.nodeB = make([]int64, width*n)
		st.candB = make([]int64, width*n)
		for i := range st.candB {
			st.candB[i] = noCand
		}
	}
	needSeg := sink != nil
	if needSeg && st.segB == nil {
		st.segB = make([]int32, width*n)
	}
	nodeB, candB, segB := st.nodeB, st.candB, st.segB
	for i := range nodeB {
		nodeB[i] = unreachPacked
	}
	// Lane sinks start empty each block (the previous block's were
	// handed to the caller): recycled buffers come back through the lane
	// pool with their capacity intact, and the append growth path never
	// zeroes memory — both beat a presized make, which clears its whole
	// capacity.
	if wantTrips {
		for l := 0; l < ndests; l++ {
			if st.tripsB[l] == nil {
				st.tripsB[l] = getTripLane()
			}
		}
	}
	keys, off, ends := c.Keys, c.Off, c.Ends
	var recip []float64
	if wantOcc {
		recip = c.recipTable()
	}
	touched := st.touched[:0]

	for li := len(keys) - 1; li >= 0; li-- {
		key := keys[li]
		touched = touched[:0]
		// Pin each lane's own destination to (li, 0 hops); see run.
		pin := int64(li) << 32
		for b := 0; b < ndests; b++ {
			nodeB[width*int(first+int32(b))+b] = pin
		}
		touched = st.relaxLanes(ends[2*off[li]:2*off[li+1]], directed, touched)
		for _, slot := range touched {
			p, old := candB[slot], nodeB[slot]
			candB[slot] = noCand
			nodeB[slot] = p
			lane := int(slot & laneMask)
			if needSeg {
				if old != unreachPacked {
					sink.accs[int(first)+lane].addSegment(keys[old>>32], key+1, keys[segB[slot]], int32(old))
				}
				segB[slot] = int32(li)
			}
			if p>>32 < old>>32 {
				if wantTrips {
					st.tripsB[lane] = append(st.tripsB[lane], Trip{
						U: slot >> shift, V: first + int32(lane),
						Dep: key, Arr: keys[p>>32], Hops: int32(p),
					})
				}
				if wantOcc {
					st.pushOcc(recip, key, keys[p>>32], int32(p))
				}
			}
		}
	}
	st.touched = touched[:0]

	if needSeg {
		// Per destination, flush the final standing segments in node
		// order — the same order st.run's tail loop uses.
		for u := 0; u < n; u++ {
			base := width * u
			for b := 0; b < ndests; b++ {
				if int32(u) == first+int32(b) {
					continue
				}
				if p := nodeB[base+b]; p != unreachPacked {
					acc := &sink.accs[int(first)+b]
					acc.addSegment(keys[p>>32], acc.kMin, keys[segB[base+b]], int32(p))
				}
			}
		}
	}
}

// forEachDestCSR runs fn for every destination on cfg.Workers parallel
// workers, each owning one pooled sweep state.
func forEachDestCSR(cfg Config, fn func(dest int32, st *sweepState)) {
	width := ResolveLaneWidth(cfg.LaneWidth)
	w := cfg.workers()
	if w > cfg.N {
		w = cfg.N
	}
	if w <= 1 {
		st := getSweepState(cfg.N, width)
		for d := int32(0); int(d) < cfg.N; d++ {
			fn(d, st)
		}
		putSweepState(st)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := getSweepState(cfg.N, width)
			for {
				d := next.Add(1) - 1
				if d >= int64(cfg.N) {
					break
				}
				fn(int32(d), st)
			}
			putSweepState(st)
		}()
	}
	wg.Wait()
}

// CollectTripsCSR returns every minimal trip of the CSR graph in
// destination-major order — destinations in increasing id, departures
// strictly decreasing per (source, destination) — for any worker count
// and lane width. It runs the same blocked lane sweep as the unified
// engine (width destinations per layer pass, parallel over destination
// blocks), so the reference and engine trip producers share one relax
// loop; lanes are concatenated in block order, which reproduces the
// order consecutive single-destination sweeps would emit.
func CollectTripsCSR(cfg Config, c *CSR) []Trip {
	lanes := CollectTripLanes(cfg, c)
	total := 0
	for _, l := range lanes {
		total += len(l)
	}
	out := make([]Trip, 0, total)
	for _, l := range lanes {
		out = append(out, l...)
	}
	RecycleTrips(lanes...)
	return out
}

// CollectTripLanes enumerates every minimal trip of the CSR graph with
// the blocked lane sweep, parallel over destination blocks, and returns
// the per-destination lanes: lane d holds destination d's trips in
// departure-descending order, so iterating lanes front to back visits
// the exact destination-major order of CollectTripsCSR without one flat
// copy. Ownership of the lanes passes to the caller; hand them back
// with RecycleTrips when done.
func CollectTripLanes(cfg Config, c *CSR) [][]Trip {
	width := ResolveLaneWidth(cfg.LaneWidth)
	blocks := DestBlocksFor(cfg.N, width)
	w := cfg.workers()
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	lanes := make([][]Trip, width*blocks)
	if w == 1 {
		wk := NewWorkerWidth(cfg.N, width)
		defer wk.Release()
		for b := 0; b < blocks; b++ {
			wk.SweepFullBlock(c, cfg.Directed, b, true, false, nil, lanes[width*b:width*(b+1)])
		}
		return lanes[:cfg.N]
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := NewWorkerWidth(cfg.N, width)
			defer wk.Release()
			for {
				b := int(next.Add(1) - 1)
				if b >= blocks {
					return
				}
				wk.SweepFullBlock(c, cfg.Directed, b, true, false, nil, lanes[width*b:width*(b+1)])
			}
		}()
	}
	wg.Wait()
	return lanes[:cfg.N]
}

// DestBlocksFor returns the number of destination blocks the blocked
// sweep schedules for n nodes at the given (resolved) lane width; block
// b covers destinations [b*width, min((b+1)*width, n)).
func DestBlocksFor(n, width int) int { return (n + width - 1) / width }

// OccupanciesCSR returns the occupancy rates of all minimal trips of
// the CSR graph. This is the hot path of the occupancy method:
// destinations are swept a lane block at a time, occupancies accumulate
// into fixed-size chunks per worker and are assembled into the
// exact-size result once, so the allocation count is O(trips / chunk
// size + workers), not O(destinations), and no value is copied more
// than once. The per-destination value runs are identical for every
// lane width; only their interleaving across destinations varies, and
// every consumer is order-independent (sorted samples, histograms).
func OccupanciesCSR(cfg Config, c *CSR) []float64 {
	width := ResolveLaneWidth(cfg.LaneWidth)
	blocks := DestBlocksFor(cfg.N, width)
	w := cfg.workers()
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	chunkLists := make([][][]float64, w)
	totals := make([]int, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			st := getSweepState(cfg.N, width)
			for {
				b := int(next.Add(1) - 1)
				if b >= blocks {
					break
				}
				first := b * width
				ndests := min(width, cfg.N-first)
				st.runOccBlock(c, int32(first), ndests, cfg.Directed)
			}
			chunkLists[slot], totals[slot] = st.takeOcc()
			putSweepState(st)
		}(i)
	}
	wg.Wait()
	total := 0
	for _, t := range totals {
		total += t
	}
	return concatChunks(total, chunkLists...)
}

// pushOcc appends one minimal trip's occupancy to the state's chunk
// sink, using the same reciprocal-table arithmetic as the blocked
// occupancy sweep so every occupancy producer yields bit-identical
// values.
func (st *sweepState) pushOcc(recip []float64, dep, arr int64, hops int32) {
	if st.occ == nil {
		st.occ = newChunk()
	}
	if len(st.occ) == occChunkLen {
		st.occChunks = append(st.occChunks, st.occ)
		st.occ = newChunk()
	}
	if recip != nil {
		st.occ = append(st.occ, float64(hops)*recip[arr-dep])
	} else {
		st.occ = append(st.occ, float64(hops)/float64(arr-dep+1))
	}
}

// DistSink accumulates the Figure 2 distance segments of a sweep, one
// accumulator per destination so parallel destination sweeps write
// disjoint slots without synchronisation. Stats folds the slots in
// destination order, which keeps the floating-point result independent
// of worker count.
type DistSink struct {
	accs []distAcc
}

// NewDistSink returns a sink for n destinations. kMin is the smallest
// start time considered; durPlus is 1 for graph series (dtime =
// arr-dep+1) and 0 for raw link streams.
func NewDistSink(n int, kMin, durPlus int64) *DistSink {
	s := &DistSink{accs: make([]distAcc, n)}
	for i := range s.accs {
		s.accs[i].kMin = kMin
		s.accs[i].durPlus = durPlus
	}
	return s
}

// Stats folds the per-destination accumulators into the mean distances.
func (s *DistSink) Stats() DistanceStats {
	var total distAcc
	for i := range s.accs {
		total.sumTime += s.accs[i].sumTime
		total.sumHops += s.accs[i].sumHops
		total.count += s.accs[i].count
	}
	if total.count == 0 {
		return DistanceStats{}
	}
	return DistanceStats{
		MeanTime: total.sumTime / float64(total.count),
		MeanHops: total.sumHops / float64(total.count),
		Count:    total.count,
	}
}

// Worker is a reusable sweep context for external schedulers (one per
// goroutine). Release returns its state to the engine pool.
type Worker struct{ st *sweepState }

// NewWorker returns a worker for graphs with n nodes, sweeping at the
// architecture's default lane width.
func NewWorker(n int) *Worker { return NewWorkerWidth(n, 0) }

// NewWorkerWidth returns a worker for graphs with n nodes sweeping
// width destinations per blocked pass; width 0 selects
// DefaultLaneWidth. Every worker of one engine run must use the same
// width — block indices are width-relative.
func NewWorkerWidth(n, width int) *Worker {
	return &Worker{st: getSweepState(n, ResolveLaneWidth(width))}
}

// Width returns the worker's resolved lane width.
func (w *Worker) Width() int { return w.st.width }

// SweepOccupancyBlock runs the blocked backward sweep for destination
// block b (see DestBlocksFor) and accumulates the occupancy of every
// minimal trip in the worker's chunk sink. It is the work-item
// primitive of the multi-delta sweep pipeline (core): the caller owns
// the worker loop, reuses one Worker across all (delta, block) items of
// one delta, and drains the sink with TakeOccupancies at delta
// boundaries.
func (w *Worker) SweepOccupancyBlock(c *CSR, directed bool, b int) {
	n := len(w.st.node)
	width := w.st.width
	first := b * width
	w.st.runOccBlock(c, int32(first), min(width, n-first), directed)
}

// SweepFullBlock runs the blocked backward sweep for destination block
// b (see DestBlocksFor), fanning the products of that one pass out:
// occupancies go to the worker's chunk sink (when wantOcc), distance
// segments accumulate into sink's per-destination slots (when sink is
// non-nil), and — when wantTrips — the block's minimal trips are
// written into out, one per-destination slice per lane, with ownership
// passing to the caller; out must hold at least Width() entries (only
// the block's live lanes are assigned, trailing entries of a partial
// final block are left untouched). Lane l, in departure-descending
// order, holds exactly the trips a single-destination sweep of
// destination b*Width()+l would emit, in the same order, so
// concatenating lanes block by block reproduces the destination-major
// trip order without ever copying a trip — callers hand a slice of
// their own lane table and the trips land in place. It is the
// work-item primitive of the unified sweep engine for metric sets
// beyond pure occupancy; each destination is swept exactly once
// regardless of how many products are requested.
func (w *Worker) SweepFullBlock(c *CSR, directed bool, b int, wantTrips, wantOcc bool, sink *DistSink, out [][]Trip) {
	st := w.st
	n := len(st.node)
	width := st.width
	first := b * width
	ndests := min(width, n-first)
	st.runFullBlock(c, int32(first), ndests, directed, wantTrips, wantOcc, sink)
	if wantTrips {
		handed := int64(0)
		for i := 0; i < ndests; i++ {
			out[i] = st.tripsB[i]
			st.tripsB[i] = nil
			if cap(out[i]) > 0 {
				handed++
			}
		}
		tripLanesHanded.Add(handed)
	}
}

// TakeOccupancies drains the worker's occupancy sink: the accumulated
// chunks and their total value count. The worker is ready for the next
// delta afterwards.
func (w *Worker) TakeOccupancies() (chunks [][]float64, total int) {
	return w.st.takeOcc()
}

// ConcatOccupancies assembles chunk lists (from TakeOccupancies) into
// one exact-size slice.
func ConcatOccupancies(total int, chunkLists ...[][]float64) []float64 {
	return concatChunks(total, chunkLists...)
}

// RecycleOccupancies returns chunks obtained from TakeOccupancies to
// the engine's chunk pool, for consumers that stream chunk contents
// (e.g. into a histogram) instead of concatenating them.
func RecycleOccupancies(chunks [][]float64) {
	for _, ch := range chunks {
		chunkPool.Put(ch)
	}
}

// Release recycles the worker's scratch; the worker must not be used
// afterwards.
func (w *Worker) Release() {
	if w.st != nil {
		putSweepState(w.st)
		w.st = nil
	}
}

// DistancesCSR computes the mean distances (see Distances) on the CSR
// graph.
func DistancesCSR(cfg Config, c *CSR, kMin int64, durPlus int64) DistanceStats {
	sink := NewDistSink(cfg.N, kMin, durPlus)
	forEachDestCSR(cfg, func(dest int32, st *sweepState) {
		st.run(c, dest, cfg.Directed, nil, &sink.accs[dest])
	})
	return sink.Stats()
}

// CountReachablePairsCSR counts ordered pairs (u, v), u != v, joined by
// a temporal path in the CSR graph.
func CountReachablePairsCSR(cfg Config, c *CSR) int64 {
	counts := make([]int64, cfg.N)
	forEachDestCSR(cfg, func(dest int32, st *sweepState) {
		st.run(c, dest, cfg.Directed, nil, nil)
		var n int64
		for u := range st.node {
			if int32(u) != dest && st.node[u] != unreachPacked {
				n++
			}
		}
		counts[dest] = n
	})
	var total int64
	for _, n := range counts {
		total += n
	}
	return total
}
