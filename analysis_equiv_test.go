package repro

// Equivalence pins for the API redesign: every deprecated wrapper must
// be bit-exact with (a) the internal implementation it used to call
// directly and (b) its Plan/Run replacement. Together with the
// internal packages' own *Reference equivalence suites, this chains
// the new single execution path all the way back to the seed
// implementations.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/validate"
)

func TestSaturationScaleWrapperEquivalence(t *testing.T) {
	s := uniformWorkload(t)
	for _, opt := range []Options{
		{},
		{Grid: LogGrid(1, 50_000, 12), Refine: 4},
		{Grid: LogGrid(1, 50_000, 9), Directed: true, Workers: 3},
		{Grid: LogGrid(1, 50_000, 9), Selectors: AllSelectors(), MaxInFlight: 2},
	} {
		want, err := core.SaturationScale(context.Background(), s, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SaturationScale(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SaturationScale wrapper diverged for %+v:\n got %+v\nwant %+v", opt, got, want)
		}

		// And against the explicit plan.
		opts := optionsFromCore(opt)
		if len(opt.Grid) > 0 {
			opts = append(opts, WithGrid(opt.Grid...))
		}
		plan, err := NewAnalysis(s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res, ok := rep.Scale()
		if !ok || !reflect.DeepEqual(res, want) {
			t.Fatalf("plan scale diverged for %+v", opt)
		}
	}
}

func TestSweepWrapperEquivalence(t *testing.T) {
	s := uniformWorkload(t)
	grid := LogGrid(1, 50_000, 10)
	for _, opt := range []Options{
		{},
		{Selectors: AllSelectors()},
		{Directed: true, Workers: 2, MaxInFlight: 1},
		{HistogramBins: 512},
	} {
		want, err := core.Sweep(context.Background(), s, grid, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Sweep(s, grid, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Sweep wrapper diverged for %+v", opt)
		}
	}
}

func TestCurveWrapperEquivalence(t *testing.T) {
	s := uniformWorkload(t)
	grid := LogGrid(1, 50_000, 8)
	for _, directed := range []bool{false, true} {
		wantClassic, err := classic.Curve(context.Background(), s, grid, classic.Options{Directed: directed})
		if err != nil {
			t.Fatal(err)
		}
		gotClassic, err := ClassicProperties(s, grid, directed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotClassic, wantClassic) {
			t.Fatalf("ClassicProperties diverged (directed=%v)", directed)
		}

		wantLoss, err := validate.TransitionLossCurve(context.Background(), s, grid, validate.Options{Directed: directed})
		if err != nil {
			t.Fatal(err)
		}
		gotLoss, err := TransitionLoss(s, grid, directed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotLoss, wantLoss) {
			t.Fatalf("TransitionLoss diverged (directed=%v)", directed)
		}

		wantElong, err := validate.ElongationCurve(context.Background(), s, grid, validate.Options{Directed: directed})
		if err != nil {
			t.Fatal(err)
		}
		gotElong, err := Elongation(s, grid, directed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotElong, wantElong) {
			t.Fatalf("Elongation diverged (directed=%v)", directed)
		}
	}
}

func TestAnalyzeAdaptiveWrapperEquivalence(t *testing.T) {
	s := twoModeWorkload(t)
	for _, cfg := range []AdaptiveConfig{
		{},
		{Bins: 60, GridPoints: 10, MaxInFlight: 2},
		{GridPoints: 8, Refine: 2, Workers: 3},
	} {
		want, err := adaptive.Analyze(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeAdaptive(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("AnalyzeAdaptive wrapper diverged for %+v:\n got %+v\nwant %+v", cfg, got, want)
		}
	}
}

func TestMultiSweepWrapperEquivalence(t *testing.T) {
	s := uniformWorkload(t)
	grid := LogGrid(1, 50_000, 8)

	build := func() []SweepObserver {
		return []SweepObserver{
			NewOccupancyObserver(nil),
			NewClassicObserver(),
			NewTransitionLossObserver(),
			NewElongationObserver(),
			NewDistanceObserver(),
		}
	}
	wantObs := build()
	if err := sweep.Run(context.Background(), s, grid, SweepEngineOptions{MaxInFlight: 2}, wantObs...); err != nil {
		t.Fatal(err)
	}
	gotObs := build()
	var stats EngineStats
	if err := MultiSweep(s, grid, SweepEngineOptions{MaxInFlight: 2, Stats: &stats}, gotObs...); err != nil {
		t.Fatal(err)
	}
	if stats.Passes != 1 || stats.Builds != int64(len(grid)) {
		t.Fatalf("wrapper did not surface engine stats: %+v", stats)
	}
	for i := range wantObs {
		want := observerPoints(t, wantObs[i])
		got := observerPoints(t, gotObs[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MultiSweep wrapper diverged for observer %d (%T)", i, wantObs[i])
		}
	}

	// Windowed: one whole-stream segment and one windowed segment.
	t0, t1, _ := s.Span()
	mid := (t0 + t1) / 2
	segs := func(obs []SweepObserver) []SegmentObserver {
		return []SegmentObserver{
			{Grid: grid, Observers: []SweepObserver{obs[0], obs[1]}},
			{Start: t0, End: mid, Grid: grid[:5], Observers: []SweepObserver{obs[2], obs[3], obs[4]}},
		}
	}
	wantObs = build()
	if err := sweep.RunWindowed(context.Background(), s, SweepEngineOptions{}, segs(wantObs)...); err != nil {
		t.Fatal(err)
	}
	gotObs = build()
	if err := MultiSweepWindowed(s, SweepEngineOptions{}, segs(gotObs)...); err != nil {
		t.Fatal(err)
	}
	for i := range wantObs {
		if !reflect.DeepEqual(observerPoints(t, gotObs[i]), observerPoints(t, wantObs[i])) {
			t.Fatalf("MultiSweepWindowed wrapper diverged for observer %d (%T)", i, wantObs[i])
		}
	}
}

// observerPoints extracts the typed curve of any built-in observer.
func observerPoints(t *testing.T, o SweepObserver) any {
	t.Helper()
	switch obs := o.(type) {
	case *OccupancyObserver:
		return obs.Points()
	case *ClassicObserver:
		return obs.Points()
	case *TransitionLossObserver:
		return obs.Points()
	case *ElongationObserver:
		return obs.Points()
	case *DistanceObserver:
		return obs.Points()
	default:
		t.Fatalf("unknown observer type %T", o)
		return nil
	}
}
