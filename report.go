package repro

// This file defines the typed Report a Plan.Run returns: one immutable
// result object with per-metric and per-window accessors plus the
// engine instrumentation of the run, replacing the per-entry-point
// result shapes of the deprecated API.

import "repro/internal/metrics"

// MetricCurve is the generic value-vs-∆ curve of one snapshot metric
// (MetricDegree, MetricClustering, MetricComponents, MetricCoreness,
// MetricWeighted): named series over the candidate grid, each with a
// stability score in [0, 1] from the Section-7 M-K proximity selector
// — 1 means the series is flat across ∆ (a plateau), 0 means it never
// stops drifting. See docs/METRICS.md for every series' definition.
type MetricCurve = metrics.Curve

// MetricSeries is one named value sequence of a MetricCurve, indexed
// like the curve's Deltas.
type MetricSeries = metrics.Series

// Curves holds every built-in curve computed for one scope (the whole
// stream or one window). Only the curves of the plan's requested
// metrics are non-nil; each is in candidate-grid order.
type Curves struct {
	// Occupancy is the occupancy-method curve (MetricOccupancy): one
	// scored point per candidate period, refinement points included and
	// merged in ∆ order when the plan refines.
	Occupancy []SweepPoint `json:"occupancy,omitempty"`
	// Classic is the Figure 2 classical-properties curve
	// (MetricClassic).
	Classic []ClassicPoint `json:"classic,omitempty"`
	// Distance is the Figure 2 mean temporal-distance curve
	// (MetricDistance).
	Distance []DistancePoint `json:"distance,omitempty"`
	// TransitionLoss is the Section 8 lost-transitions curve
	// (MetricTransitionLoss).
	TransitionLoss []LossPoint `json:"transition_loss,omitempty"`
	// Elongation is the Section 8 trip-elongation curve
	// (MetricElongation).
	Elongation []ElongationPoint `json:"elongation,omitempty"`
	// Snapshots are the snapshot-metric curves (MetricDegree,
	// MetricClustering, MetricComponents, MetricCoreness,
	// MetricWeighted), one MetricCurve per requested metric in enum
	// order.
	Snapshots []MetricCurve `json:"snapshots,omitempty"`
}

// WindowReport is the outcome of one Window of the plan: the window's
// curves and, when the occupancy metric ran, its saturation scale.
type WindowReport struct {
	// Start, End are the window bounds, [Start, End) in raw time.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Scale is the occupancy-method outcome on the window's events; the
	// zero Result when the plan did not request MetricOccupancy.
	Scale Result `json:"scale"`
	// Curves are the window's metric curves.
	Curves Curves `json:"curves"`
}

// Report is the immutable outcome of Plan.Run.
type Report struct {
	scale    Result
	hasScale bool
	global   Curves
	windows  []WindowReport
	adaptive *AdaptiveAnalysis
	stats    EngineStats
}

// Scale returns the occupancy-method outcome on the whole stream — the
// saturation scale γ, its score and the full score curve — and whether
// the plan computed one (it did unless MetricOccupancy was deselected).
func (r *Report) Scale() (Result, bool) { return r.scale, r.hasScale }

// Gamma returns the saturation scale of the whole stream, or 0 when
// the plan did not compute one.
func (r *Report) Gamma() int64 { return r.scale.Gamma }

// Global returns the whole-stream curves of every requested metric.
func (r *Report) Global() Curves { return r.global }

// Occupancy returns the whole-stream occupancy-method curve.
func (r *Report) Occupancy() []SweepPoint { return r.global.Occupancy }

// Classic returns the whole-stream classical-properties curve.
func (r *Report) Classic() []ClassicPoint { return r.global.Classic }

// Distances returns the whole-stream mean temporal-distance curve.
func (r *Report) Distances() []DistancePoint { return r.global.Distance }

// TransitionLoss returns the whole-stream lost-transitions curve.
func (r *Report) TransitionLoss() []LossPoint { return r.global.TransitionLoss }

// Elongation returns the whole-stream trip-elongation curve.
func (r *Report) Elongation() []ElongationPoint { return r.global.Elongation }

// Snapshots returns the whole-stream snapshot-metric curves, one per
// requested snapshot metric ("degree", "clustering", "components",
// "coreness", "weighted") in enum order.
func (r *Report) Snapshots() []MetricCurve { return r.global.Snapshots }

// Snapshot returns the whole-stream curve of the named snapshot metric
// and whether the plan computed it.
func (r *Report) Snapshot(name string) (MetricCurve, bool) {
	for _, c := range r.global.Snapshots {
		if c.Metric == name {
			return c, true
		}
	}
	return MetricCurve{}, false
}

// NumWindows returns how many plan windows were analysed.
func (r *Report) NumWindows() int { return len(r.windows) }

// Window returns the i-th window's report, in WithWindows registration
// order.
func (r *Report) Window(i int) WindowReport { return r.windows[i] }

// Windows returns every window report in registration order.
func (r *Report) Windows() []WindowReport { return r.windows }

// Adaptive returns the activity-segmented analysis, non-nil only for
// plans built with WithAdaptive.
func (r *Report) Adaptive() *AdaptiveAnalysis { return r.adaptive }

// EngineStats returns the engine instrumentation accumulated over
// every pass of the run.
func (r *Report) EngineStats() EngineStats { return r.stats }
