// Emailnet analyses a mid-size company email network (the paper's
// Manufacturing scenario): it determines the saturation scale, shows
// how much propagation information each aggregation period loses, and
// recommends a safe range of scales for downstream studies.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/datasets"
)

func main() {
	// The calibrated Manufacturing stand-in: 153 employees, 2.22
	// messages per person per day over 120 days, strong circadian
	// rhythm.
	s, err := datasets.Manufacturing().Stream()
	if err != nil {
		log.Fatal(err)
	}
	st := s.ComputeStats()
	fmt.Printf("company email network: %d employees, %d messages, %.1f days, %.2f msgs/person/day\n",
		st.Nodes, st.Events, float64(st.Span)/86400, st.EventsPerNodePerDay)

	plan, err := repro.NewAnalysis(s,
		repro.WithGrid(repro.LogGrid(60, s.Duration(), 20)...),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	res, _ := report.Scale()
	gammaH := float64(res.Gamma) / 3600
	fmt.Printf("\nsaturation scale gamma = %.1f h\n", gammaH)
	fmt.Println("aggregation periods beyond gamma alter propagation; stay below it")

	// Quantify the loss at a few canonical periods, as Section 8 does:
	// a second plan scoped to the transition-loss metric alone.
	candidates := []int64{900, 3600, 6 * 3600, res.Gamma, 24 * 3600, 7 * 24 * 3600}
	lossPlan, err := repro.NewAnalysis(s,
		repro.WithMetrics(repro.MetricTransitionLoss),
		repro.WithGrid(candidates...),
	)
	if err != nil {
		log.Fatal(err)
	}
	lossReport, err := lossPlan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	loss := lossReport.TransitionLoss()
	fmt.Printf("\n%12s  %18s\n", "period", "transitions lost")
	for _, p := range loss {
		marker := ""
		if p.Delta == res.Gamma {
			marker = "   <- gamma"
		}
		fmt.Printf("%11.1fh  %17.1f%%%s\n", float64(p.Delta)/3600, 100*p.Lost, marker)
	}

	// A concrete recommendation: the largest canonical period whose
	// transition loss stays below 25%.
	var recommended int64
	for _, p := range loss {
		if p.Lost < 0.25 && p.Delta <= res.Gamma {
			recommended = p.Delta
		}
	}
	if recommended == 0 {
		recommended = candidates[0]
	}
	fmt.Printf("\nrecommended aggregation period for propagation studies: %.1f h\n",
		float64(recommended)/3600)
}
