// Methodcomp reproduces the paper's Section 7 analysis on a synthetic
// network: it scores every aggregation period with the five uniformity
// metrics (M-K proximity, standard deviation, variation coefficient,
// Shannon entropy, CRE) and shows that all of them except the variation
// coefficient agree on the saturation scale.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/synth"
)

func main() {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 60, LinksPerPair: 20, T: 100_000, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-uniform network: %d nodes, %d events over %d s\n\n",
		s.NumNodes(), s.NumEvents(), 100_000)

	sels := repro.AllSelectors()
	plan, err := repro.NewAnalysis(s,
		repro.WithGrid(repro.LogGrid(1, 100_000, 28)...),
		repro.WithSelectors(sels...),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	points := report.Occupancy()

	fmt.Printf("%-24s %12s\n", "selector", "chosen delta")
	fmt.Printf("%-24s %12s\n", "--------", "------------")
	for i, sel := range sels {
		best := 0
		for j := range points {
			if points[j].Scores[i] > points[best].Scores[i] {
				best = j
			}
		}
		note := ""
		if sel.Name() == "variation-coefficient" {
			note = "   (degenerate, see paper Section 7)"
		}
		fmt.Printf("%-24s %11ds%s\n", sel.Name(), points[best].Delta, note)
	}

	fmt.Println("\nnormalised scores by period:")
	fmt.Printf("%10s", "delta(s)")
	for _, sel := range sels {
		fmt.Printf("  %6s", shorten(sel.Name()))
	}
	fmt.Println()
	maxes := make([]float64, len(sels))
	for _, p := range points {
		for i, v := range p.Scores {
			if v > maxes[i] {
				maxes[i] = v
			}
		}
	}
	for _, p := range points {
		fmt.Printf("%10d", p.Delta)
		for i, v := range p.Scores {
			norm := 0.0
			if maxes[i] > 0 {
				norm = v / maxes[i]
			}
			fmt.Printf("  %6.3f", norm)
		}
		fmt.Println()
	}
}

func shorten(name string) string {
	if len(name) > 6 {
		return name[:6]
	}
	return name
}
