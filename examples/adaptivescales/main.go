// Adaptivescales demonstrates the extension proposed in the paper's
// conclusion: for a network alternating busy and quiet periods, a single
// saturation scale favours the busy parts, so the library can segment
// the activity modes and determine a scale for each part independently.
//
// The whole analysis — the global sweep and one sweep per detected
// segment — is one plan: repro.WithAdaptive turns segmentation on, and
// Plan.Run executes everything as a single pass of the windowed sweep
// engine — the stream is sorted once and every (segment, ∆)
// aggregation is built exactly once, with all segments sharing one
// worker pool and one in-flight bound (repro.WithMaxInFlight).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/synth"
)

func main() {
	// A network with day-like alternation: bursts of activity separated
	// by quiet stretches (the paper's two-mode benchmark).
	s, err := synth.TwoMode(synth.TwoModeConfig{
		Nodes: 20, N1: 25, N2: 1,
		T1: 30_000, T2: 70_000, Alternations: 5, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-mode network: %d nodes, %d events, 5 alternations (30%% busy / 70%% quiet)\n\n",
		s.NumNodes(), s.NumEvents())

	// One fused engine pass prices the global scale and every segment;
	// WithMaxInFlight caps resident aggregations across all of them.
	plan, err := repro.NewAnalysis(s,
		repro.WithAdaptive(repro.AdaptiveConfig{Bins: 100}),
		repro.WithGridPoints(20),
		repro.WithMaxInFlight(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	a := report.Adaptive()

	fmt.Printf("plain occupancy method (whole stream): gamma = %d s (score %.4f)\n",
		a.GlobalGamma, a.Global.Score)
	fmt.Printf("two activity modes detected: %v\n\n", a.TwoMode)
	fmt.Printf("%-22s %-6s %8s %12s\n", "segment", "mode", "events", "gamma")
	for _, seg := range a.Segments {
		mode := "quiet"
		if seg.HighActivity {
			mode = "busy"
		}
		gamma := "(too few events)"
		if seg.Gamma > 0 {
			gamma = fmt.Sprintf("%ds", seg.Gamma)
		}
		fmt.Printf("[%8d, %8d)   %-6s %8d %12s\n", seg.Start, seg.End, mode, seg.Events, gamma)
	}
	fmt.Printf("\nconservative single scale (min over segments): %d s\n", a.MinGamma)
	fmt.Println("-> aggregate busy periods finely and quiet periods coarsely,")
	fmt.Println("   or use the conservative scale for the whole stream.")
}
