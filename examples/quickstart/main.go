// Quickstart: build a small link stream, plan the occupancy method
// through the plan/run lifecycle and print the saturation scale with
// its score curve.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Build a toy dynamic network: 12 people, every pair interacting a
	// few times at random over one simulated day.
	rng := rand.New(rand.NewSource(7))
	s := repro.NewStream()
	people := []string{"ana", "bob", "cho", "dee", "eve", "fay", "gus", "hal", "ivy", "jon", "kim", "lou"}
	const day = 86_400
	for i, u := range people {
		for _, v := range people[i+1:] {
			for k := 0; k < 3; k++ {
				if err := s.Add(u, v, rng.Int63n(day)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// The occupancy method as an analysis plan: sweep aggregation
	// periods, score how uniformly the occupancy rates of minimal trips
	// spread over [0,1], refine around the maximum. Plan.Run accepts a
	// context — pass a cancellable one to bound long analyses.
	plan, err := repro.NewAnalysis(s,
		repro.WithGrid(repro.LogGrid(1, day, 24)...),
		repro.WithRefine(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	res, _ := report.Scale()
	fmt.Printf("saturation scale gamma = %d s (%.1f min)\n", res.Gamma, float64(res.Gamma)/60)
	fmt.Printf("M-K proximity at gamma = %.4f\n\n", res.Score)

	fmt.Println("period(s)  proximity  minimal trips")
	for _, p := range report.Occupancy() {
		fmt.Printf("%9d  %9.4f  %d\n", p.Delta, p.Scores[0], p.Trips)
	}

	// Aggregating at gamma keeps propagation mostly intact; far beyond
	// it, every minimal trip collapses to occupancy 1.
	at, err := repro.OccupancyDistribution(s, res.Gamma, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	beyond, err := repro.OccupancyDistribution(s, day, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmean occupancy at gamma: %.3f   at delta = T: %.3f\n", at.Mean(), beyond.Mean())
}
