// Socialnet demonstrates *why* the aggregation period matters for an
// online social network (the paper's Irvine scenario): it compares
// reachability and trip durations in the aggregated series below and
// beyond the saturation scale, making the alteration of propagation
// visible.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/datasets"
)

func describe(s *repro.Stream, delta int64, label string) {
	g, err := repro.Aggregate(s, delta, false)
	if err != nil {
		log.Fatal(err)
	}
	trips := repro.MinimalTrips(g)
	var occSum float64
	ones := 0
	for _, tr := range trips {
		occSum += tr.Occupancy()
		if tr.Occupancy() == 1 {
			ones++
		}
	}
	n := len(trips)
	fmt.Printf("%-22s windows=%6d  trips=%7d  reachable pairs=%6d  mean occ=%.3f  occ=1: %4.1f%%\n",
		label, g.NumWindows, n, repro.ReachablePairs(g), occSum/float64(max(1, n)),
		100*float64(ones)/float64(max(1, n)))
}

func main() {
	s, err := datasets.Irvine().Stream()
	if err != nil {
		log.Fatal(err)
	}
	st := s.ComputeStats()
	fmt.Printf("student message network: %d users, %d messages over %.0f days\n\n",
		st.Nodes, st.Events, float64(st.Span)/86400)

	plan, err := repro.NewAnalysis(s,
		repro.WithGrid(repro.LogGrid(60, s.Duration(), 20)...),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	gamma := report.Gamma()
	fmt.Printf("saturation scale gamma = %.1f h\n\n", float64(gamma)/3600)

	// Below gamma the occupancy distribution is spread (some trips busy,
	// some waiting — the stream's temporal texture); beyond it trips
	// saturate at occupancy 1: link order inside windows is gone.
	describe(s, gamma/8, "gamma/8 (safe)")
	describe(s, gamma, "gamma (upper bound)")
	describe(s, gamma*8, "8x gamma (altered)")
	describe(s, s.Duration(), "delta = T (static)")

	// The same story through Section 8's loss measure, as a
	// loss-metric-only plan over three canonical periods.
	lossPlan, err := repro.NewAnalysis(s,
		repro.WithMetrics(repro.MetricTransitionLoss),
		repro.WithGrid(gamma/8, gamma, gamma*8),
	)
	if err != nil {
		log.Fatal(err)
	}
	lossReport, err := lossPlan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	loss := lossReport.TransitionLoss()
	fmt.Println()
	for _, p := range loss {
		fmt.Printf("transitions lost at %7.2f h: %5.1f%%\n", float64(p.Delta)/3600, 100*p.Lost)
	}
}
