package repro

// Pins for the snapshot-metric surface: the Metric enum round-trips
// through ParseMetrics, plans compute the requested MetricCurves, and
// the wire bytes of a snapshot-metric report are golden-pinned across
// execution knobs, exactly like the classic report goldens. Regenerate
// with:
//
//	go test -run TestSnapshotReportGolden -update-golden

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// snapshotMetricNames is the canonical name set of the snapshot
// metrics, in enum order.
var snapshotMetricNames = []string{"degree", "clustering", "components", "coreness", "weighted"}

func TestParseSnapshotMetrics(t *testing.T) {
	ms, err := ParseMetrics("degree, clustering,components,coreness,weighted")
	if err != nil {
		t.Fatal(err)
	}
	want := []Metric{MetricDegree, MetricClustering, MetricComponents, MetricCoreness, MetricWeighted}
	if len(ms) != len(want) {
		t.Fatalf("parsed %d metrics, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m != want[i] {
			t.Fatalf("metric %d = %v, want %v", i, m, want[i])
		}
		if m.String() != snapshotMetricNames[i] {
			t.Fatalf("String() = %q, want %q", m.String(), snapshotMetricNames[i])
		}
	}
	if _, err := ParseMetrics("kcore"); err == nil {
		t.Fatal("unknown metric accepted")
	} else if !contains(err.Error(), "coreness") {
		t.Fatalf("error %q does not list the known metrics", err)
	}
}

// TestPlanSnapshotCurves: a plan with the snapshot metrics yields one
// MetricCurve per metric, in enum order, over the plan's grid — for
// the global scope and for every window.
func TestPlanSnapshotCurves(t *testing.T) {
	s := goldenWorkload(t, 42)
	grid := []int64{500, 2_000, 8_000, 30_000}
	plan, err := NewAnalysis(s,
		WithMetrics(MetricOccupancy, MetricDegree, MetricClustering, MetricComponents, MetricCoreness, MetricWeighted),
		WithGrid(grid...),
		WithWindows(Window{Start: 0, End: 15_000, Grid: grid}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkCurves := func(scope string, snaps []MetricCurve) {
		t.Helper()
		if len(snaps) != len(snapshotMetricNames) {
			t.Fatalf("%s: %d snapshot curves, want %d", scope, len(snaps), len(snapshotMetricNames))
		}
		for i, c := range snaps {
			if c.Metric != snapshotMetricNames[i] {
				t.Errorf("%s: curve %d is %q, want %q (enum order)", scope, i, c.Metric, snapshotMetricNames[i])
			}
			if len(c.Deltas) != len(grid) {
				t.Errorf("%s/%s: %d deltas, want %d", scope, c.Metric, len(c.Deltas), len(grid))
			}
			for _, ser := range c.Series {
				if len(ser.Values) != len(c.Deltas) {
					t.Errorf("%s/%s/%s: %d values for %d deltas", scope, c.Metric, ser.Name, len(ser.Values), len(c.Deltas))
				}
				if ser.Stability < 0 || ser.Stability > 1 {
					t.Errorf("%s/%s/%s: stability %v outside [0, 1]", scope, c.Metric, ser.Name, ser.Stability)
				}
			}
		}
	}
	checkCurves("global", rep.Snapshots())
	if rep.NumWindows() != 1 {
		t.Fatalf("NumWindows = %d, want 1", rep.NumWindows())
	}
	checkCurves("window", rep.Window(0).Curves.Snapshots)

	if _, ok := rep.Snapshot("weighted"); !ok {
		t.Error(`Snapshot("weighted") not found`)
	}
	if _, ok := rep.Snapshot("occupancy"); ok {
		t.Error(`Snapshot("occupancy") reported a curve — occupancy is not a snapshot metric`)
	}

	// The snapshot metrics ride the plan's fused pass: one CSR build
	// per distinct (scope, ∆), however many metrics consume it.
	stats := rep.EngineStats()
	if want := int64(2 * len(grid)); stats.Builds != want {
		t.Errorf("Builds = %d, want %d (global + window grids, one build each)", stats.Builds, want)
	}
}

// TestPlanSnapshotOnly: snapshot metrics work without the occupancy
// method — no scale, curves present.
func TestPlanSnapshotOnly(t *testing.T) {
	plan, err := NewAnalysis(goldenWorkload(t, 42), WithMetrics(MetricDegree), WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Scale(); ok {
		t.Error("snapshot-only plan computed a scale")
	}
	if len(rep.Snapshots()) != 1 || rep.Snapshots()[0].Metric != "degree" {
		t.Fatalf("Snapshots() = %+v, want the degree curve alone", rep.Snapshots())
	}
}

func snapshotSpecForGolden(directed bool) *PlanSpec {
	return &PlanSpec{
		Metrics:    append([]string{"occupancy"}, snapshotMetricNames...),
		Directed:   directed,
		GridPoints: 8,
	}
}

// TestSnapshotReportGolden pins the wire bytes of a snapshot-metric
// report across 3 seeds × directed/undirected × the execution-knob
// matrix, against its own golden set.
func TestSnapshotReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not -short")
	}
	type knobs struct {
		workers, laneWidth int
	}
	matrix := []knobs{{1, 4}, {1, 8}, {3, 4}, {3, 8}}

	for _, seed := range []int64{101, 202, 303} {
		for _, directed := range []bool{false, true} {
			name := fmt.Sprintf("snapshots_seed%d_%s", seed, map[bool]string{false: "undirected", true: "directed"}[directed])
			t.Run(name, func(t *testing.T) {
				spec := snapshotSpecForGolden(directed)
				var reference []byte
				for _, k := range matrix {
					s := goldenWorkload(t, seed)
					opts, err := spec.Options()
					if err != nil {
						t.Fatal(err)
					}
					opts = append(opts, WithWorkers(k.workers), WithLaneWidth(k.laneWidth))
					plan, err := NewAnalysis(s, opts...)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := plan.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					data, err := json.Marshal(rep)
					if err != nil {
						t.Fatal(err)
					}
					if reference == nil {
						reference = data
					} else if !bytes.Equal(data, reference) {
						t.Fatalf("report bytes at workers=%d lane=%d differ from workers=%d lane=%d",
							k.workers, k.laneWidth, matrix[0].workers, matrix[0].laneWidth)
					}
				}

				golden := filepath.Join("testdata", "report_"+name+".golden.json")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					var pretty bytes.Buffer
					if err := json.Indent(&pretty, reference, "", "  "); err != nil {
						t.Fatal(err)
					}
					pretty.WriteByte('\n')
					if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("%v (regenerate with -update-golden)", err)
				}
				var compact bytes.Buffer
				if err := json.Compact(&compact, want); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(reference, compact.Bytes()) {
					t.Fatalf("report wire bytes drifted from %s (regenerate with -update-golden and review)", golden)
				}
			})
		}
	}
}

// TestSnapshotSpecRoundTrip: a spec carrying the snapshot metrics
// survives JSON and builds a plan equivalent to hand-written options.
func TestSnapshotSpecRoundTrip(t *testing.T) {
	spec := &PlanSpec{
		Metrics:    []string{"degree", "weighted"},
		Directed:   true,
		GridPoints: 5,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back PlanSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	opts, err := back.Options()
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := NewAnalysis(goldenWorkload(t, 99), opts...)
	if err != nil {
		t.Fatal(err)
	}
	byHand, err := NewAnalysis(goldenWorkload(t, 99),
		WithMetrics(MetricDegree, MetricWeighted),
		WithDirected(true),
		WithGridPoints(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	repSpec, err := fromSpec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	repHand, err := byHand.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(repSpec)
	b, _ := json.Marshal(repHand)
	if !bytes.Equal(a, b) {
		t.Fatalf("spec-built plan diverged from hand-built options:\nspec %s\nhand %s", a, b)
	}
}
