package repro

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (deliverable d). One benchmark per experiment,
// using the quick profile so a full -bench=. pass stays in minutes;
// run `go run ./cmd/tsfigures` for the paper-scale numbers. The
// Ablation* benchmarks measure the design choices called out in
// DESIGN.md §6.

import (
	"bytes"
	"context"

	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/figures"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/temporal"
	"repro/internal/validate"
)

func benchProfile() figures.Profile { return figures.QuickProfile() }

// BenchmarkTable1SaturationScales regenerates Table 1: the saturation
// scale of each of the four dataset stand-ins.
func BenchmarkTable1SaturationScales(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Table1(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ClassicalProperties regenerates Figure 2: density,
// connectedness and distance curves across aggregation periods.
func BenchmarkFig2ClassicalProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig2(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3OccupancyIrvine regenerates Figure 3: occupancy ICDs and
// the M-K proximity curve for the Irvine stand-in.
func BenchmarkFig3OccupancyIrvine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig3(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4OccupancyICDs and BenchmarkFig5MKProximity regenerate
// Figures 4 and 5 (same computation, different panels).
func BenchmarkFig4OccupancyICDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig45(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write([]byte(r.RenderICDs())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MKProximity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig45(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write([]byte(r.RenderProximity())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TimeUniform regenerates Figure 6 left: γ vs mean
// inter-contact time on time-uniform networks.
func BenchmarkFig6TimeUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig6Left(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TwoMode regenerates Figure 6 right: γ vs low-activity
// fraction on two-mode networks.
func BenchmarkFig6TwoMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig6Right(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SelectorComparison regenerates Figure 7: the five
// selection methods on one dataset.
func BenchmarkFig7SelectorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig7(benchProfile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8TransitionsLost and BenchmarkFig8Elongation regenerate
// the two Figure 8 validation panels (one computation).
func BenchmarkFig8TransitionsLost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig8(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Loss) == 0 {
			b.Fatal("no loss points")
		}
	}
}

func BenchmarkFig8Elongation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig8(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Elongation) == 0 {
			b.Fatal("no elongation points")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

func irvineStream(b *testing.B) *Stream {
	b.Helper()
	s, err := datasets.Irvine().Stream()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAblationSweepSequential vs BenchmarkAblationSweepParallel:
// the per-destination worker pool of the temporal engine.
func BenchmarkAblationSweepSequential(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(context.Background(), s, grid, core.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSweepParallel(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(context.Background(), s, grid, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMKExact vs BenchmarkAblationMKHistogram: exact
// piecewise M-K integration over the sorted sample vs the fixed-bin
// streaming approximation.
func BenchmarkAblationMKExact(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(context.Background(), s, grid, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMKHistogram(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(context.Background(), s, grid, core.Options{HistogramBins: 2048}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGridRefinement: coarse grid plus refinement vs a
// dense grid of equivalent resolution.
func BenchmarkAblationGridCoarseRefined(b *testing.B) {
	s := irvineStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.SaturationScale(context.Background(), s, core.Options{
			Grid: core.LogGrid(3600, s.Duration(), 8), Refine: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGridDense(b *testing.B) {
	s := irvineStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.SaturationScale(context.Background(), s, core.Options{
			Grid: core.LogGrid(3600, s.Duration(), 14),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSweepAllMetrics vs BenchmarkMultiSweepSeparatePasses:
// the unified observer engine. The fused run computes the occupancy
// curve, the classical Figure 2 properties, the transition-loss curve
// and the elongation curve in one engine pass (each period's CSR built
// and swept once, the raw stream's trips enumerated once); the
// separate-passes run computes the same four curves with the retained
// seed single-metric implementations (core.SweepReference,
// classic.CurveReference, validate.*CurveReference) — four passes over
// the stream, each rebuilding its own period arenas — which is what
// figures.RunAll paid before the engine existed.
// BenchmarkMultiSweepSeparateWrappers is the tighter comparison against
// the current engine-backed entry points called one metric at a time.
func BenchmarkMultiSweepAllMetrics(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ := core.NewOccupancyObserver(nil)
		cls := classic.NewObserver()
		loss := validate.NewTransitionLossObserver()
		elong := validate.NewElongationObserver()
		if err := sweep.Run(context.Background(), s, grid, sweep.Options{}, occ, cls, loss, elong); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanRunAllMetrics is the plan/run lifecycle computing the
// same four curves as BenchmarkMultiSweepAllMetrics: one NewAnalysis
// plan, one fused Plan.Run pass. CI pairs the two (tsbench -pair), so
// the plan path may never regress against the raw engine entry point
// it wraps.
func BenchmarkPlanRunAllMetrics(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := NewAnalysis(s,
			WithMetrics(MetricOccupancy, MetricClassic, MetricTransitionLoss, MetricElongation),
			WithGrid(grid...),
		)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiSweepSeparatePasses(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SweepReference(s, grid, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := classic.CurveReference(s, grid, classic.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := validate.TransitionLossCurveReference(s, grid, validate.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := validate.ElongationCurveReference(s, grid, validate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiSweepSeparateWrappers(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(context.Background(), s, grid, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := classic.Curve(context.Background(), s, grid, classic.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := validate.TransitionLossCurve(context.Background(), s, grid, validate.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := validate.ElongationCurve(context.Background(), s, grid, validate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepLanes4 vs BenchmarkSweepLanes8: the hardware-width
// relax/commit kernels on the same fused all-metrics pass. Results are
// bit-identical (the width equivalence suites pin that); the delta is
// pure kernel throughput — register pressure and cache-line use of the
// lane-major state blocks. CI pairs the two so neither width silently
// regresses against the other.
func benchSweepLanes(b *testing.B, width int) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ := core.NewOccupancyObserver(nil)
		cls := classic.NewObserver()
		if err := sweep.Run(context.Background(), s, grid, sweep.Options{LaneWidth: width}, occ, cls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepLanes4(b *testing.B) { benchSweepLanes(b, 4) }
func BenchmarkSweepLanes8(b *testing.B) { benchSweepLanes(b, 8) }

// BenchmarkScaleSearchSpeculative vs BenchmarkScaleSearchSerial:
// speculative bracket bisection (both half-midpoints of the bracket
// staged into one engine request) against serial bisection (one
// midpoint per pass). Both sweep the identical ∆ sequence and return
// bit-identical Results — the core equivalence suite pins that — so
// the delta is the halved number of refinement passes. CI pairs the
// two: speculation may never cost more than serial.
func benchScaleSearch(b *testing.B, speculate bool) {
	s := irvineStream(b)
	opt := core.Options{
		Grid: core.LogGrid(3600, s.Duration(), 8), Refine: 6,
		Bisect: !speculate, Speculate: speculate,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SaturationScale(context.Background(), s, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleSearchSerial(b *testing.B)      { benchScaleSearch(b, false) }
func BenchmarkScaleSearchSpeculative(b *testing.B) { benchScaleSearch(b, true) }

// BenchmarkStreamingTrips vs BenchmarkStreamingTripsReference: the
// streaming raw-stream trip pipeline feeding the Section 8 validation
// observers (per-destination runs merged into the incremental pair
// index, two-hop spans kept, per-period scans sharded across the worker
// pool) against the retained eager path (flat stream trip slice,
// whole-period TripBlocks, sequential scan). Results are bit-identical;
// the delta is residency: the streaming run's peak trip allocations
// scale with the in-flight runs (lanes recycled block by block), not
// with the stream's total trip population.
func BenchmarkStreamingTrips(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := validate.NewTransitionLossObserver()
		elong := validate.NewElongationObserver()
		if err := sweep.Run(context.Background(), s, grid, sweep.Options{MaxInFlight: 2}, loss, elong); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingTripsReference(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := validate.NewTransitionLossObserverReference()
		elong := validate.NewElongationObserverReference()
		if err := sweep.Run(context.Background(), s, grid, sweep.Options{MaxInFlight: 2}, loss, elong); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowedDedup vs BenchmarkWindowedDedupSeparatePasses: two
// scopes requesting the same window and grid (the homogeneous-stream
// shape: single activity segment == global scope). The fused run builds
// each period's CSR once and fans it to both scopes; the separate
// passes pay every build and sweep twice.
func BenchmarkWindowedDedup(b *testing.B) {
	s := irvineStream(b)
	t0, t1, _ := s.Span()
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occA := core.NewOccupancyObserver(nil)
		occB := core.NewOccupancyObserver(nil)
		err := sweep.RunWindowed(context.Background(), s, sweep.Options{},
			sweep.SegmentObserver{Grid: grid, Observers: []sweep.Observer{occA}},
			sweep.SegmentObserver{Start: t0, End: t1 + 1, Grid: grid, Observers: []sweep.Observer{occB}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowedDedupSeparatePasses(b *testing.B) {
	s := irvineStream(b)
	grid := core.LogGrid(3600, s.Duration(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pass := 0; pass < 2; pass++ {
			occ := core.NewOccupancyObserver(nil)
			if err := sweep.Run(context.Background(), s, grid, sweep.Options{}, occ); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkEngineMinimalTrips measures the backward DP sweep alone.
func BenchmarkEngineMinimalTrips(b *testing.B) {
	s := irvineStream(b)
	g, err := Aggregate(s, 6*3600, false)
	if err != nil {
		b.Fatal(err)
	}
	layers := temporal.SeriesLayers(g)
	cfg := temporal.Config{N: g.N}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ := temporal.Occupancies(cfg, layers)
		if len(occ) == 0 {
			b.Fatal("no trips")
		}
	}
}

// BenchmarkEngineDistances measures the Figure 2 distance sweep alone.
func BenchmarkEngineDistances(b *testing.B) {
	s := irvineStream(b)
	g, err := Aggregate(s, 6*3600, false)
	if err != nil {
		b.Fatal(err)
	}
	layers := temporal.SeriesLayers(g)
	cfg := temporal.Config{N: g.N}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := temporal.Distances(cfg, layers, 0, 1)
		if d.Count == 0 {
			b.Fatal("no distances")
		}
	}
}

// BenchmarkMKDistance measures the exact M-K integration.
func BenchmarkMKDistance(b *testing.B) {
	s := irvineStream(b)
	sample, err := OccupancyDistribution(s, 6*3600, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := sample.MKDistance(); d < 0 {
			b.Fatal("negative distance")
		}
	}
}

// BenchmarkAggregate measures window building and per-window dedup.
func BenchmarkAggregate(b *testing.B) {
	s := irvineStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(s, 3600, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerators measures the synthetic workload generators.
func BenchmarkGeneratorTimeUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.TimeUniform(synth.TimeUniformConfig{
			Nodes: 50, LinksPerPair: 10, T: 100_000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratorMessageNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.MessageNetwork(synth.MessageConfig{
			Nodes: 100, Days: 30, MsgsPerPersonDay: 1, Seed: int64(i),
			ActivityExponent: 0.8, Reciprocity: 0.3, PartnerAffinity: 0.6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectorScores measures the five Section 7 metrics on one
// occupancy sample.
func BenchmarkSelectorScores(b *testing.B) {
	s := irvineStream(b)
	sample, err := OccupancyDistribution(s, 6*3600, Options{})
	if err != nil {
		b.Fatal(err)
	}
	sels := dist.AllSelectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sel := range sels {
			_ = sel.Score(sample)
		}
	}
}

// adaptiveBenchStream is the two-mode benchmark workload of the
// adaptive analysis benchmarks.
func adaptiveBenchStream(b *testing.B) *Stream {
	b.Helper()
	s, err := synth.TwoMode(synth.TwoModeConfig{
		Nodes: 16, N1: 12, N2: 1, T1: 10_000, T2: 10_000, Alternations: 4, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAdaptiveAnalyze vs BenchmarkAdaptiveAnalyzeReference: the
// fused windowed-engine adaptive analysis (one engine pass serving the
// global sweep and every segment sweep) against the retained
// per-segment implementation (one core.SaturationScale pass per
// segment plus one global pass). Both compute bit-identical results —
// the equivalence tests in internal/adaptive pin that — so the delta
// is pure engine-pass overhead: repeated canonicalisation, worker-pool
// spin-up, and the lost cross-segment parallelism.
func BenchmarkAdaptiveAnalyze(b *testing.B) {
	s := adaptiveBenchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptive.Analyze(context.Background(), s, adaptive.Config{GridPoints: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptiveAnalyzeReference(b *testing.B) {
	s := adaptiveBenchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptive.AnalyzeReference(s, adaptive.Config{GridPoints: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSRBuild measures the flat-arena aggregation pass alone:
// bucketing the sorted canonical event buffer into one period's CSR
// with sort-and-compact dedup.
func BenchmarkCSRBuild(b *testing.B) {
	s := irvineStream(b)
	s.Sort()
	events := linkstream.Canonical(s.Events())
	t0 := events[0].T
	var scratch temporal.CSRScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := temporal.BuildCSR(events, t0, 3600, &scratch)
		if c.NumLayers() == 0 {
			b.Fatal("no layers")
		}
	}
}

// BenchmarkEngineMinimalTripsPrebuilt measures the backward DP sweep on
// a prebuilt CSR arena, isolating the sweep from layer conversion.
func BenchmarkEngineMinimalTripsPrebuilt(b *testing.B) {
	s := irvineStream(b)
	g, err := Aggregate(s, 6*3600, false)
	if err != nil {
		b.Fatal(err)
	}
	c := SeriesCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ := CSROccupancies(c, g.N, false)
		if len(occ) == 0 {
			b.Fatal("no trips")
		}
	}
}

// --- Ingest benchmarks (out-of-core columnar linkstream) ---
//
// One synthetic message trace (~180k events), three ways into the
// engine: parsing the text edge list (IngestText), decoding the
// columnar file streamed into memory (IngestColumnar), and handing the
// engine the memory-mapped columnar view directly (IngestMapped —
// zero-parse, columns addressed in place). CI pairs the three
// (tsbench -pair): mapped may never cost more than the streamed
// decode, and the streamed decode may never cost more than the text
// parse. IngestMappedWindow measures the windowed promise: a ~1% slice
// resolved through the skip index touches only its own span.

var (
	ingestOnce     sync.Once
	ingestText     []byte
	ingestColumnar []byte
	ingestPath     string
	ingestErr      error
)

func ingestFixture(b *testing.B) {
	b.Helper()
	ingestOnce.Do(func() {
		s, err := synth.MessageNetwork(synth.MessageConfig{
			Nodes: 300, Days: 60, MsgsPerPersonDay: 10, Seed: 17,
			ActivityExponent: 0.8, Reciprocity: 0.3, PartnerAffinity: 0.6,
		})
		if err != nil {
			ingestErr = err
			return
		}
		s.Sort()
		var text bytes.Buffer
		if _, err := s.WriteTo(&text); err != nil {
			ingestErr = err
			return
		}
		ingestText = text.Bytes()
		var col bytes.Buffer
		if err := s.WriteColumnar(&col, linkstream.ColumnarOptions{}); err != nil {
			ingestErr = err
			return
		}
		ingestColumnar = col.Bytes()
		dir, err := os.MkdirTemp("", "repro-ingest-*")
		if err != nil {
			ingestErr = err
			return
		}
		ingestPath = filepath.Join(dir, "trace.lsc")
		ingestErr = os.WriteFile(ingestPath, ingestColumnar, 0o644)
	})
	if ingestErr != nil {
		b.Fatal(ingestErr)
	}
}

// BenchmarkIngestText: the baseline — parse the text edge list, sort,
// and produce the engine's canonical event buffer.
func BenchmarkIngestText(b *testing.B) {
	ingestFixture(b)
	b.SetBytes(int64(len(ingestText)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStream()
		if _, err := s.ReadEvents(bytes.NewReader(ingestText)); err != nil {
			b.Fatal(err)
		}
		ev, _, err := s.EngineEvents(0, 0, true)
		if err != nil || len(ev) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestColumnar: decode the columnar bytes into an in-memory
// stream (the ReadColumnar path), then produce the engine buffer.
func BenchmarkIngestColumnar(b *testing.B) {
	ingestFixture(b)
	b.SetBytes(int64(len(ingestColumnar)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStream()
		if err := s.ReadColumnar(bytes.NewReader(ingestColumnar)); err != nil {
			b.Fatal(err)
		}
		ev, _, err := s.EngineEvents(0, 0, true)
		if err != nil || len(ev) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestMapped: open the columnar file memory-mapped and hand
// the engine its canonical event buffer straight off the file bytes —
// no parse, no intermediate Stream.
func BenchmarkIngestMapped(b *testing.B) {
	ingestFixture(b)
	b.SetBytes(int64(len(ingestColumnar)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := linkstream.OpenMapped(ingestPath)
		if err != nil {
			b.Fatal(err)
		}
		ev, pre, err := c.EngineEvents(0, 0, true)
		if err != nil || !pre || len(ev) == 0 {
			b.Fatal("mapped ingest lost the pre-sorted fast path")
		}
		c.Close()
	}
}

// BenchmarkIngestMappedWindow: one windowed slice (~1% of the span)
// off an already-open mapped view, resolved through the skip index.
func BenchmarkIngestMappedWindow(b *testing.B) {
	ingestFixture(b)
	c, err := linkstream.OpenMapped(ingestPath)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	span := c.TimeMax() - c.TimeMin() + 1
	start := c.TimeMin() + span/2
	end := start + span/100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, pre, err := c.EngineEvents(start, end, true)
		if err != nil || !pre || len(ev) == 0 {
			b.Fatal("windowed mapped slice failed")
		}
	}
	b.StopTimer()
	if c.SliceHits() < int64(b.N) {
		b.Fatalf("skip index not used: %d hits for %d iterations", c.SliceHits(), b.N)
	}
}

// BenchmarkForwardEarliestArrivals measures the single-source forward
// query on the Irvine stand-in aggregated at six hours.
func BenchmarkForwardEarliestArrivals(b *testing.B) {
	s := irvineStream(b)
	g, err := Aggregate(s, 6*3600, false)
	if err != nil {
		b.Fatal(err)
	}
	layers := temporal.SeriesLayers(g)
	cfg := temporal.Config{N: g.N}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr, _ := temporal.EarliestArrivals(cfg, layers, int32(i%g.N), 0)
		if len(arr) != g.N {
			b.Fatal("bad arrival array")
		}
	}
}
