package repro

// Distributed execution tests: partition shape, partial validation,
// and the tentpole pin — DistributedRun over an in-process runner is
// byte-identical to a local Plan.Run of the same spec, across metric
// sets, windows, refinement, speculation and shard counts.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/synth"
)

func shardWorkload(t testing.TB, seed int64) *Stream {
	t.Helper()
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 9, LinksPerPair: 3, T: 20_000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func inlineSpec(t testing.TB, s *Stream, mut func(*PlanSpec)) *PlanSpec {
	t.Helper()
	spec := &PlanSpec{Inline: InlineEventsOf(s)}
	if mut != nil {
		mut(spec)
	}
	return spec
}

// localRun is the reference: a single-process Plan.Run of the spec.
func localRun(t *testing.T, spec *PlanSpec) *Report {
	t.Helper()
	plan, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedRunParity is the tentpole pin: for every combination
// of metrics, windows, refinement, speculation and shard count, the
// folded distributed report is byte-identical to the local one.
func TestDistributedRunParity(t *testing.T) {
	s := shardWorkload(t, 5)
	t0, t1, _ := s.Span()
	mid := (t0 + t1) / 2
	cases := []struct {
		name string
		mut  func(*PlanSpec)
	}{
		{"occupancy default grid", func(spec *PlanSpec) {
			spec.GridPoints = 9
		}},
		{"all curve metrics refined", func(spec *PlanSpec) {
			spec.Metrics = []string{"occupancy", "classic", "distance", "loss", "elongation"}
			spec.GridPoints = 8
			spec.Refine = 3
		}},
		{"snapshots speculative", func(spec *PlanSpec) {
			spec.Metrics = []string{"occupancy", "degree", "clustering", "components"}
			spec.GridPoints = 7
			spec.Refine = 2
			spec.Speculate = true
		}},
		{"windows and global", func(spec *PlanSpec) {
			spec.Metrics = []string{"occupancy", "classic"}
			spec.GridPoints = 7
			spec.Refine = 2
			spec.Windows = []Window{
				{Start: t0, End: mid},
				{Start: mid, End: t1 + 1},
			}
		}},
		{"windows only", func(spec *PlanSpec) {
			spec.Metrics = []string{"occupancy", "loss"}
			spec.GridPoints = 6
			spec.Refine = 2
			spec.Windows = []Window{{Start: t0, End: mid}, {Start: mid, End: t1 + 1}}
			spec.WindowsOnly = true
		}},
		{"explicit grid selectors", func(spec *PlanSpec) {
			spec.Grid = LogGrid(1, 20_000, 11)
			spec.Selectors = []string{"mk-proximity", "shannon-entropy"}
			spec.Refine = 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := inlineSpec(t, s, tc.mut)
			want := reportJSON(t, localRun(t, spec))
			for _, shards := range []int{1, 2, 3, 5} {
				var calls atomic.Int64
				runner := func(ctx context.Context, sh ShardPlan) (*Report, error) {
					calls.Add(1)
					return RunShardLocal(ctx, sh)
				}
				rep, err := DistributedRun(context.Background(), spec, shards, runner)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := reportJSON(t, rep); !bytes.Equal(got, want) {
					t.Fatalf("shards=%d: distributed report diverges from local\nlocal: %s\ndist:  %s", shards, want, got)
				}
				if shards > 1 && calls.Load() < 2 {
					t.Fatalf("shards=%d: runner called %d times, sharding did not happen", shards, calls.Load())
				}
				if rep.EngineStats().Passes != 0 {
					t.Fatalf("folded report carries engine stats: %+v", rep.EngineStats())
				}
			}
		})
	}
}

// TestDistributedRunColumnarParity pins parity over a mapped columnar
// stream ref — the shape the real coordinator dispatches — and that
// the partitioner pins the header hash into every shard spec.
func TestDistributedRunColumnarParity(t *testing.T) {
	s := shardWorkload(t, 8)
	path := columnarPathOf(t, s)
	spec := &PlanSpec{
		Stream:     &StreamRef{Path: path},
		Metrics:    []string{"occupancy", "classic"},
		GridPoints: 8,
		Refine:     2,
	}
	want := reportJSON(t, localRun(t, spec))

	shards, err := PartitionSpec(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if sh.Spec.Stream == nil || sh.Spec.Stream.Hash == "" {
			t.Fatalf("lane %d: shard spec lacks the pinned header hash: %+v", sh.Lane, sh.Spec.Stream)
		}
		if sh.Spec.Refine != 0 || sh.Spec.Speculate {
			t.Fatalf("lane %d: shard spec kept refinement knobs", sh.Lane)
		}
	}
	rep, err := DistributedRun(context.Background(), spec, 3, RunShardLocal)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("columnar distributed report diverges from local\nlocal: %s\ndist:  %s", want, got)
	}
}

func TestPartitionSpecShape(t *testing.T) {
	s := shardWorkload(t, 3)
	t0, t1, _ := s.Span()
	spec := inlineSpec(t, s, func(spec *PlanSpec) {
		spec.Grid = LogGrid(1, 20_000, 10)
		spec.Refine = 4
		spec.Speculate = true
		spec.Windows = []Window{{Start: t0, End: t1 + 1}}
	})
	shards, err := PartitionSpec(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var global, window int
	var globalDeltas []int64
	for i, sh := range shards {
		if sh.Lane != i {
			t.Fatalf("lane %d out of order (index %d)", sh.Lane, i)
		}
		switch sh.Scope {
		case GlobalScope:
			global++
			globalDeltas = append(globalDeltas, sh.Deltas...)
			if sh.Spec.WindowsOnly || len(sh.Spec.Windows) != 0 {
				t.Fatalf("global shard carries windows: %+v", sh.Spec)
			}
		case 0:
			window++
			if !sh.Spec.WindowsOnly || len(sh.Spec.Windows) != 1 {
				t.Fatalf("window shard shape: %+v", sh.Spec)
			}
			if sh.Start != t0 || sh.End != t1+1 {
				t.Fatalf("window shard bounds [%d, %d)", sh.Start, sh.End)
			}
		default:
			t.Fatalf("unexpected scope %d", sh.Scope)
		}
	}
	if global != 3 || window != 3 {
		t.Fatalf("got %d global and %d window shards, want 3 and 3", global, window)
	}
	if fmt.Sprint(globalDeltas) != fmt.Sprint(spec.Grid) {
		t.Fatalf("global chunks %v do not concatenate to the grid %v", globalDeltas, spec.Grid)
	}

	adaptive := inlineSpec(t, s, func(spec *PlanSpec) {
		spec.Adaptive = &AdaptiveSpec{Bins: 16}
	})
	if _, err := PartitionSpec(adaptive, 2); err == nil {
		t.Fatal("adaptive spec partitioned")
	}
}

// TestDistributedRunRejectsCorruptPartials: a runner handing back a
// wrong-shaped partial (the corrupted-partial fault) fails the run
// instead of folding garbage.
func TestDistributedRunRejectsCorruptPartials(t *testing.T) {
	s := shardWorkload(t, 4)
	spec := inlineSpec(t, s, func(spec *PlanSpec) { spec.GridPoints = 8 })

	corruptions := map[string]func(sh ShardPlan) ShardPlan{
		"shifted grid": func(sh ShardPlan) ShardPlan {
			cp := *sh.Spec
			grid := append([]int64(nil), cp.Grid...)
			grid[0]++
			cp.Grid = grid
			sh.Spec = &cp
			return sh
		},
		"dropped delta": func(sh ShardPlan) ShardPlan {
			cp := *sh.Spec
			cp.Grid = cp.Grid[:len(cp.Grid)-1]
			sh.Spec = &cp
			return sh
		},
		"extra metric": func(sh ShardPlan) ShardPlan {
			cp := *sh.Spec
			cp.Metrics = []string{"occupancy", "degree"}
			sh.Spec = &cp
			return sh
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			runner := func(ctx context.Context, sh ShardPlan) (*Report, error) {
				return RunShardLocal(ctx, corrupt(sh))
			}
			if _, err := DistributedRun(context.Background(), spec, 2, runner); err == nil {
				t.Fatal("corrupt partial folded without error")
			}
		})
	}

	t.Run("runner error propagates", func(t *testing.T) {
		boom := errors.New("worker lost")
		runner := func(ctx context.Context, sh ShardPlan) (*Report, error) {
			if sh.Lane == 1 {
				return nil, boom
			}
			return RunShardLocal(ctx, sh)
		}
		if _, err := DistributedRun(context.Background(), spec, 3, runner); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want wrapped %v", err, boom)
		}
	})
}

func TestValidatePartial(t *testing.T) {
	s := shardWorkload(t, 6)
	t0, t1, _ := s.Span()
	spec := inlineSpec(t, s, func(spec *PlanSpec) {
		spec.Metrics = []string{"occupancy", "classic", "degree"}
		spec.GridPoints = 6
		spec.Windows = []Window{{Start: t0, End: t1 + 1}}
	})
	shards, err := PartitionSpec(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		rep, err := RunShardLocal(context.Background(), sh)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePartial(sh, rep); err != nil {
			t.Fatalf("lane %d honest partial rejected: %v", sh.Lane, err)
		}
		if err := ValidatePartial(sh, nil); err == nil {
			t.Fatal("nil partial accepted")
		}
		// A partial from the wrong scope must be rejected.
		other := shards[(sh.Lane+1)%len(shards)]
		if other.Scope != sh.Scope {
			if err := ValidatePartial(sh, mustRun(t, other)); err == nil {
				t.Fatalf("lane %d accepted a partial from scope %d", sh.Lane, other.Scope)
			}
		}
	}

	// Wrong window bounds.
	winShard := shards[len(shards)-1]
	if winShard.Scope == GlobalScope {
		t.Fatal("expected a window shard last")
	}
	moved := winShard
	moved.Start++
	if err := ValidatePartial(moved, mustRun(t, winShard)); err == nil {
		t.Fatal("window-bounds mismatch accepted")
	}
	// Wrong deltas.
	skewed := winShard
	skewed.Deltas = append([]int64(nil), winShard.Deltas...)
	skewed.Deltas[0]++
	if err := ValidatePartial(skewed, mustRun(t, winShard)); err == nil {
		t.Fatal("delta mismatch accepted")
	}
}

func mustRun(t *testing.T, sh ShardPlan) *Report {
	t.Helper()
	rep, err := RunShardLocal(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestWithWindowsOnly: the option drops the global scope (empty global
// curves, no scale) while the window results match a with-global run's
// windows exactly; invalid combinations are rejected at plan build.
func TestWithWindowsOnly(t *testing.T) {
	s := shardWorkload(t, 7)
	t0, t1, _ := s.Span()
	win := Window{Start: t0, End: t1 + 1}
	base := []Option{
		WithMetrics(MetricOccupancy, MetricClassic),
		WithGridPoints(6), WithWindows(win),
	}

	full, err := NewAnalysis(s, base...)
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	only, err := NewAnalysis(s, append(append([]Option(nil), base...), WithWindowsOnly())...)
	if err != nil {
		t.Fatal(err)
	}
	onlyRep, err := only.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := onlyRep.Scale(); ok {
		t.Fatal("windows-only run reports a global scale")
	}
	if len(onlyRep.Occupancy()) != 0 || len(onlyRep.Classic()) != 0 {
		t.Fatal("windows-only run carries global curves")
	}
	a, b := fullRep.Window(0), onlyRep.Window(0)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("windows-only window diverges:\nfull: %s\nonly: %s", aj, bj)
	}
	if st := onlyRep.EngineStats(); st.Passes == 0 {
		t.Fatal("windows-only run recorded no window passes")
	}

	bad := [][]Option{
		{WithWindowsOnly()},
		{WithWindowsOnly(), WithAdaptive(AdaptiveConfig{})},
		{WithWindowsOnly(), WithWindows(win), WithObservers(NewOccupancyObserver(nil))},
	}
	for i, opts := range bad {
		if _, err := NewAnalysis(s, opts...); err == nil {
			t.Fatalf("invalid windows-only combination %d accepted", i)
		}
	}
}

// TestPlanCloseIdempotent: Close on a mapped plan is safe to call
// twice (satellite: double-close of the mapped stream is a no-op) and
// concurrently.
func TestPlanCloseIdempotent(t *testing.T) {
	s := shardWorkload(t, 9)
	path := columnarPathOf(t, s)
	plan, err := NewAnalysis(nil, WithStreamPath(path), WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := plan.Close(); err != nil {
		t.Fatal(err)
	}
	if err := plan.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}

	plan2, err := NewAnalysis(nil, WithStreamPath(path), WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := plan2.Close(); err != nil {
				t.Errorf("concurrent Close = %v", err)
			}
		}()
	}
	wg.Wait()

	// In-memory plans have nothing to close, twice over.
	mem, err := NewAnalysis(s, WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
}
