package repro

// This file is the wire surface of the plan/run lifecycle: PlanSpec is
// the serialisable form of an analysis request (what NewAnalysis
// freezes from functional options, expressed as data), and Report
// gains JSON marshalling so a run's outcome can leave the process. The
// serving layer (internal/serve, cmd/tsserve) wraps both in a
// versioned envelope; everything here is the version-independent
// payload shape.
//
// A PlanSpec references its stream one of two ways: by StreamRef — a
// path plus the columnar file's header hash and span, the out-of-core
// reference a server resolves against its stream root — or by Inline
// events carried in the spec itself (small streams, tests). Custom
// observers, raw segments and progress callbacks are code, not data:
// plans that need them are built with functional options and cannot
// round-trip through a PlanSpec.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/dist"
)

// StreamRef identifies a stream file by path and content fingerprint:
// the columnar header hash (Columnar.HeaderHash) plus the header's
// span and event count. Path is the only field a submitter must fill;
// the fingerprint fields, when set, let the receiver refuse a ref
// whose file has changed since the spec was built.
type StreamRef struct {
	// Path locates the stream file. Servers resolve it relative to
	// their stream root; a Plan built locally records the path it
	// opened.
	Path string `json:"path"`
	// Hash is the hex SHA-256 header hash of the columnar file
	// (empty for refs built over non-columnar files, which have no
	// cheap fingerprint).
	Hash string `json:"hash,omitempty"`
	// TimeMin, TimeMax and Events mirror the columnar header's span
	// and event count.
	TimeMin int64 `json:"time_min,omitempty"`
	TimeMax int64 `json:"time_max,omitempty"`
	Events  int   `json:"events,omitempty"`
}

// InlineEvent is one link-stream event carried inside a PlanSpec.
type InlineEvent struct {
	U string `json:"u"`
	V string `json:"v"`
	T int64  `json:"t"`
}

// AdaptiveSpec is the wire form of WithAdaptive: the segmentation
// policy fields of AdaptiveConfig (everything else of an adaptive run
// comes from the spec's own knobs, exactly as with WithAdaptive).
type AdaptiveSpec struct {
	Bins             int     `json:"bins,omitempty"`
	MinRunBins       int     `json:"min_run_bins,omitempty"`
	SeparationFactor float64 `json:"separation_factor,omitempty"`
}

// PlanSpec is the serialisable form of an analysis request. The zero
// value plus a stream reference is the paper's default analysis, like
// option-less NewAnalysis; every field maps onto exactly one
// functional option (see Options). Fields that do not alter results —
// Workers, MaxInFlight, LaneWidth, Speculate, ElongationSpill — are
// execution hints: the engine pins results bit-identical across them,
// which is what lets a server cache results without keying on them.
type PlanSpec struct {
	// Stream references the stream file; exactly one of Stream and
	// Inline must be set.
	Stream *StreamRef `json:"stream,omitempty"`
	// Inline carries the stream's events in the spec itself.
	Inline []InlineEvent `json:"inline,omitempty"`

	// Metrics are the metric names WithMetrics/ParseMetrics accept
	// ("occupancy", "classic", "distance", "loss", "elongation",
	// "degree", "clustering", "components", "coreness", "weighted");
	// nil selects the default set (occupancy alone).
	Metrics []string `json:"metrics,omitempty"`
	// Selectors are selector names (see ParseSelectors); nil selects
	// the paper's M-K proximity selector.
	Selectors []string `json:"selectors,omitempty"`
	Directed  bool     `json:"directed,omitempty"`
	// Grid, GridPoints and MinDelta shape the candidate grid exactly
	// like WithGrid, WithGridPoints and WithMinDelta.
	Grid          []int64  `json:"grid,omitempty"`
	GridPoints    int      `json:"grid_points,omitempty"`
	MinDelta      int64    `json:"min_delta,omitempty"`
	Refine        int      `json:"refine,omitempty"`
	HistogramBins int      `json:"histogram_bins,omitempty"`
	Windows       []Window `json:"windows,omitempty"`
	// WindowsOnly drops the global scope (WithWindowsOnly): only the
	// spec's Windows are analysed. Shard specs of a distributed run use
	// it so window chunks cost no redundant whole-stream pass.
	WindowsOnly bool          `json:"windows_only,omitempty"`
	Adaptive    *AdaptiveSpec `json:"adaptive,omitempty"`

	// Execution hints (never part of a result's identity).
	Workers         int   `json:"workers,omitempty"`
	MaxInFlight     int   `json:"max_inflight,omitempty"`
	LaneWidth       int   `json:"lane_width,omitempty"`
	Speculate       bool  `json:"speculate,omitempty"`
	ElongationSpill int64 `json:"elongation_spill,omitempty"`
}

// ParseSelectors resolves selector wire names — the Selector.Name()
// values, e.g. "mk-proximity", "shannon-entropy" — into Selector
// values. Unknown names error and name every known selector.
func ParseSelectors(names []string) ([]Selector, error) {
	all := dist.AllSelectors()
	var out []Selector
	for _, name := range names {
		found := false
		for _, sel := range all {
			if sel.Name() == name {
				out = append(out, sel)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, sel := range all {
				known[i] = sel.Name()
			}
			return nil, fmt.Errorf("repro: unknown selector %q (have %s)", name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Options maps the spec onto the functional options NewAnalysis
// accepts — everything except the stream itself (see NewPlan, which
// resolves that too). Specs round-trip: NewAnalysis(stream,
// spec.Options()...) behaves exactly like hand-written options with
// the same values.
func (spec *PlanSpec) Options() ([]Option, error) {
	var opts []Option
	if len(spec.Metrics) > 0 {
		ms, err := ParseMetrics(strings.Join(spec.Metrics, ","))
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithMetrics(ms...))
	}
	if len(spec.Selectors) > 0 {
		sels, err := ParseSelectors(spec.Selectors)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithSelectors(sels...))
	}
	if spec.Directed {
		opts = append(opts, WithDirected(true))
	}
	if len(spec.Grid) > 0 {
		opts = append(opts, WithGrid(spec.Grid...))
	}
	if spec.GridPoints != 0 {
		opts = append(opts, WithGridPoints(spec.GridPoints))
	}
	if spec.MinDelta != 0 {
		opts = append(opts, WithMinDelta(spec.MinDelta))
	}
	if spec.Refine != 0 {
		opts = append(opts, WithRefine(spec.Refine))
	}
	if spec.HistogramBins != 0 {
		opts = append(opts, WithHistogramBins(spec.HistogramBins))
	}
	if len(spec.Windows) > 0 {
		opts = append(opts, WithWindows(spec.Windows...))
	}
	if spec.WindowsOnly {
		opts = append(opts, WithWindowsOnly())
	}
	if spec.Adaptive != nil {
		opts = append(opts, WithAdaptive(AdaptiveConfig{
			Bins:             spec.Adaptive.Bins,
			MinRunBins:       spec.Adaptive.MinRunBins,
			SeparationFactor: spec.Adaptive.SeparationFactor,
		}))
	}
	if spec.Workers != 0 {
		opts = append(opts, WithWorkers(spec.Workers))
	}
	if spec.MaxInFlight != 0 {
		opts = append(opts, WithMaxInFlight(spec.MaxInFlight))
	}
	if spec.LaneWidth != 0 {
		opts = append(opts, WithLaneWidth(spec.LaneWidth))
	}
	if spec.Speculate {
		opts = append(opts, WithSpeculate(true))
	}
	if spec.ElongationSpill != 0 {
		opts = append(opts, WithElongationSpill(spec.ElongationSpill))
	}
	return opts, nil
}

// InlineEventsOf is InlineStream's inverse: the stream's events as the
// wire form a PlanSpec carries in-line, for submitters that parsed a
// small stream locally and want a server (or coordinator) to analyse
// it without a shared file.
func InlineEventsOf(s *Stream) []InlineEvent {
	events := s.Events()
	out := make([]InlineEvent, len(events))
	for i, e := range events {
		out[i] = InlineEvent{U: s.NodeName(e.U), V: s.NodeName(e.V), T: e.T}
	}
	return out
}

// InlineStream materialises the spec's Inline events into a Stream.
func (spec *PlanSpec) InlineStream() (*Stream, error) {
	s := NewStream()
	for i, e := range spec.Inline {
		if err := s.Add(e.U, e.V, e.T); err != nil {
			return nil, fmt.Errorf("repro: inline event %d: %w", i, err)
		}
	}
	return s, nil
}

// NewPlan builds the plan the spec describes, resolving the stream
// reference: Inline events become an in-memory stream, a StreamRef
// opens the file at its path (columnar files memory-mapped, exactly
// like WithStreamPath). Callers that resolve paths themselves — e.g. a
// server sandboxing refs under a stream root — should rewrite
// Stream.Path first. extra options are appended after the spec's own —
// the place for the non-serialisable ones (WithProgress,
// WithObservers). Close the returned plan when done if the spec used a
// StreamRef.
func (spec *PlanSpec) NewPlan(extra ...Option) (*Plan, error) {
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	opts = append(opts, extra...)
	switch {
	case spec.Stream != nil && len(spec.Inline) > 0:
		return nil, errors.New("repro: plan spec: stream ref and inline events are mutually exclusive")
	case spec.Stream != nil:
		return NewAnalysis(nil, append(opts, WithStreamPath(spec.Stream.Path))...)
	case len(spec.Inline) > 0:
		s, err := spec.InlineStream()
		if err != nil {
			return nil, err
		}
		return NewAnalysis(s, opts...)
	default:
		return nil, errors.New("repro: plan spec: no stream: set stream or inline")
	}
}

// StreamRef returns the columnar stream reference of a plan built with
// WithStreamPath over a columnar file — the path it opened plus the
// file's header hash, span and event count — and whether the plan has
// one (in-memory and text/LSB-parsed plans do not).
func (p *Plan) StreamRef() (StreamRef, bool) {
	if p.col == nil {
		return StreamRef{}, false
	}
	return StreamRef{
		Path:    p.cfg.streamPath,
		Hash:    p.col.HeaderHash(),
		TimeMin: p.col.TimeMin(),
		TimeMax: p.col.TimeMax(),
		Events:  p.col.NumEvents(),
	}, true
}

// reportWire is the JSON shape of a Report. The engine instrumentation
// (EngineStats) is deliberately not part of it: results are
// deterministic — bit-identical across worker counts, lane widths and
// in-flight budgets — but the instrumentation of a particular run is
// not, and the wire form of a Report must be byte-identical whenever
// the results are. Serving layers report per-job stats beside the
// report, not inside it.
type reportWire struct {
	Scale    *Result           `json:"scale,omitempty"`
	Global   Curves            `json:"global"`
	Windows  []WindowReport    `json:"windows,omitempty"`
	Adaptive *AdaptiveAnalysis `json:"adaptive,omitempty"`
}

// MarshalJSON encodes the report's results: the saturation-scale
// outcome (absent when the plan deselected MetricOccupancy), the
// global curves, every window report and the adaptive analysis.
// Encoding is deterministic: the same results always produce the same
// bytes.
func (r *Report) MarshalJSON() ([]byte, error) {
	w := reportWire{
		Global:   r.global,
		Windows:  r.windows,
		Adaptive: r.adaptive,
	}
	if r.hasScale {
		sc := r.scale
		w.Scale = &sc
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a report encoded by MarshalJSON. The decoded
// report carries zero EngineStats — instrumentation does not travel
// with results.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		global:   w.Global,
		windows:  w.Windows,
		adaptive: w.Adaptive,
	}
	if w.Scale != nil {
		r.scale = *w.Scale
		r.hasScale = true
	}
	return nil
}
