package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// The Figure 1 stream of the paper: nodes a..e, nine events over
// eleven time units.
func figure1() *repro.Stream {
	s := repro.NewStream()
	events := []struct {
		u, v string
		t    int64
	}{
		{"e", "d", 1}, {"a", "b", 2}, {"d", "c", 4},
		{"c", "b", 5}, {"e", "a", 6}, {"a", "b", 8},
		{"d", "e", 9}, {"c", "b", 10}, {"b", "a", 11},
	}
	for _, e := range events {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			log.Fatal(err)
		}
	}
	return s
}

// Aggregating the paper's Figure 1 stream with ∆ = 4 yields the three
// snapshots of the figure.
func ExampleAggregate() {
	g, err := repro.Aggregate(figure1(), 4, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows:", g.NumWindows)
	fmt.Println("edges per window:",
		len(g.Windows[0].Edges), len(g.Windows[1].Edges), len(g.Windows[2].Edges))
	// Output:
	// windows: 3
	// edges per window: 3 3 3
}

// NewAnalysis is the package's single execution path: functional
// options freeze an immutable Plan, and Plan.Run executes everything
// the plan requests — here the occupancy method plus the Section 8
// transition-loss curve — as one fused engine pass, returning a typed
// Report.
func ExampleNewAnalysis() {
	plan, err := repro.NewAnalysis(figure1(),
		repro.WithMetrics(repro.MetricOccupancy, repro.MetricTransitionLoss),
		repro.WithGrid(1, 4, 11),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gamma:", report.Gamma())
	fmt.Println("periods scored:", len(report.Occupancy()))
	fmt.Println("transitions in the stream:", report.TransitionLoss()[0].Total)
	// Output:
	// gamma: 1
	// periods scored: 3
	// transitions in the stream: 11
}

// MultiSweep computes several metrics in one fused engine pass: each
// candidate period is aggregated and swept exactly once, and every
// registered observer scores that single sweep.
func ExampleMultiSweep() {
	occ := repro.NewOccupancyObserver(nil)
	loss := repro.NewTransitionLossObserver()
	dist := repro.NewDistanceObserver()
	grid := []int64{1, 4, 11}
	err := repro.MultiSweep(figure1(), grid, repro.SweepEngineOptions{MaxInFlight: 2},
		occ, loss, dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("periods scored:", len(occ.Points()))
	fmt.Println("transitions in the stream:", loss.Points()[0].Total)
	fmt.Printf("mean dtime at delta=4: %.2f windows\n", dist.Points()[1].MeanTime)
	// Output:
	// periods scored: 3
	// transitions in the stream: 11
	// mean dtime at delta=4: 1.65 windows
}

// Minimal trips capture the propagation structure; their occupancy
// rates are the core quantity of the occupancy method.
func ExampleMinimalTrips() {
	g, err := repro.Aggregate(figure1(), 4, false)
	if err != nil {
		log.Fatal(err)
	}
	trips := repro.MinimalTrips(g)
	multiWindow := 0
	for _, tr := range trips {
		if tr.Arr > tr.Dep {
			multiWindow++
		}
	}
	fmt.Println("minimal trips:", len(trips))
	fmt.Println("spanning several windows:", multiWindow)
	// Output:
	// minimal trips: 28
	// spanning several windows: 10
}

// The occupancy distribution collapses onto 1 when the whole stream is
// aggregated into a single graph — the limit in which all temporal
// information is lost.
func ExampleOccupancyDistribution() {
	sample, err := repro.OccupancyDistribution(figure1(), 1000, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trips: %d, mean occupancy: %.1f\n", sample.N(), sample.Mean())
	// Output:
	// trips: 10, mean occupancy: 1.0
}

// EarliestArrivals answers spreading queries on the aggregated series:
// when does information leaving a node reach everyone else?
func ExampleEarliestArrivals() {
	s := figure1()
	g, err := repro.Aggregate(s, 4, false)
	if err != nil {
		log.Fatal(err)
	}
	e, _ := s.NodeID("e")
	b, _ := s.NodeID("b")
	arr, hops := repro.EarliestArrivals(g, e, 0)
	fmt.Printf("e reaches b in window %d after %d hops\n", arr[b], hops[b])
	// Output:
	// e reaches b in window 2 after 2 hops
}
