package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// The Figure 1 stream of the paper: nodes a..e, nine events over
// eleven time units.
func figure1() *repro.Stream {
	s := repro.NewStream()
	events := []struct {
		u, v string
		t    int64
	}{
		{"e", "d", 1}, {"a", "b", 2}, {"d", "c", 4},
		{"c", "b", 5}, {"e", "a", 6}, {"a", "b", 8},
		{"d", "e", 9}, {"c", "b", 10}, {"b", "a", 11},
	}
	for _, e := range events {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			log.Fatal(err)
		}
	}
	return s
}

// Aggregating the paper's Figure 1 stream with ∆ = 4 yields the three
// snapshots of the figure.
func ExampleAggregate() {
	g, err := repro.Aggregate(figure1(), 4, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows:", g.NumWindows)
	fmt.Println("edges per window:",
		len(g.Windows[0].Edges), len(g.Windows[1].Edges), len(g.Windows[2].Edges))
	// Output:
	// windows: 3
	// edges per window: 3 3 3
}

// NewAnalysis is the package's single execution path: functional
// options freeze an immutable Plan, and Plan.Run executes everything
// the plan requests — here the occupancy method plus the Section 8
// transition-loss curve — as one fused engine pass, returning a typed
// Report.
func ExampleNewAnalysis() {
	plan, err := repro.NewAnalysis(figure1(),
		repro.WithMetrics(repro.MetricOccupancy, repro.MetricTransitionLoss),
		repro.WithGrid(1, 4, 11),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gamma:", report.Gamma())
	fmt.Println("periods scored:", len(report.Occupancy()))
	fmt.Println("transitions in the stream:", report.TransitionLoss()[0].Total)
	// Output:
	// gamma: 1
	// periods scored: 3
	// transitions in the stream: 11
}

// MultiSweep computes several metrics in one fused engine pass: each
// candidate period is aggregated and swept exactly once, and every
// registered observer scores that single sweep.
func ExampleMultiSweep() {
	occ := repro.NewOccupancyObserver(nil)
	loss := repro.NewTransitionLossObserver()
	dist := repro.NewDistanceObserver()
	grid := []int64{1, 4, 11}
	err := repro.MultiSweep(figure1(), grid, repro.SweepEngineOptions{MaxInFlight: 2},
		occ, loss, dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("periods scored:", len(occ.Points()))
	fmt.Println("transitions in the stream:", loss.Points()[0].Total)
	fmt.Printf("mean dtime at delta=4: %.2f windows\n", dist.Points()[1].MeanTime)
	// Output:
	// periods scored: 3
	// transitions in the stream: 11
	// mean dtime at delta=4: 1.65 windows
}

// Minimal trips capture the propagation structure; their occupancy
// rates are the core quantity of the occupancy method.
func ExampleMinimalTrips() {
	g, err := repro.Aggregate(figure1(), 4, false)
	if err != nil {
		log.Fatal(err)
	}
	trips := repro.MinimalTrips(g)
	multiWindow := 0
	for _, tr := range trips {
		if tr.Arr > tr.Dep {
			multiWindow++
		}
	}
	fmt.Println("minimal trips:", len(trips))
	fmt.Println("spanning several windows:", multiWindow)
	// Output:
	// minimal trips: 28
	// spanning several windows: 10
}

// The occupancy distribution collapses onto 1 when the whole stream is
// aggregated into a single graph — the limit in which all temporal
// information is lost.
func ExampleOccupancyDistribution() {
	sample, err := repro.OccupancyDistribution(figure1(), 1000, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trips: %d, mean occupancy: %.1f\n", sample.N(), sample.Mean())
	// Output:
	// trips: 10, mean occupancy: 1.0
}

// EarliestArrivals answers spreading queries on the aggregated series:
// when does information leaving a node reach everyone else?
func ExampleEarliestArrivals() {
	s := figure1()
	g, err := repro.Aggregate(s, 4, false)
	if err != nil {
		log.Fatal(err)
	}
	e, _ := s.NodeID("e")
	b, _ := s.NodeID("b")
	arr, hops := repro.EarliestArrivals(g, e, 0)
	fmt.Printf("e reaches b in window %d after %d hops\n", arr[b], hops[b])
	// Output:
	// e reaches b in window 2 after 2 hops
}

// The snapshot metrics judge a time scale by the stability of
// structural properties: WithMetrics selects them by enum value, the
// Report returns one generic MetricCurve per metric with the values of
// every series across the candidate grid.
func ExampleWithMetrics() {
	plan, err := repro.NewAnalysis(figure1(),
		repro.WithMetrics(repro.MetricDegree, repro.MetricComponents),
		repro.WithGrid(1, 4, 11),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, curve := range report.Snapshots() {
		fmt.Println(curve.Metric, "series:", len(curve.Series), "deltas:", curve.Deltas)
	}
	// Output:
	// degree series: 3 deltas: [1 4 11]
	// components series: 2 deltas: [1 4 11]
}

// Report.Snapshot fetches one metric's curve by name; Curve.Get one
// series of it. Each series carries a stability score in [0, 1]: how
// close the values stay to a plateau across aggregation periods.
func ExampleReport_Snapshot() {
	plan, err := repro.NewAnalysis(figure1(),
		repro.WithMetrics(repro.MetricDegree),
		repro.WithGrid(1, 4, 11),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	curve, ok := report.Snapshot("degree")
	if !ok {
		log.Fatal("degree curve missing")
	}
	mean, _ := curve.Get("mean_degree")
	for i, delta := range curve.Deltas {
		fmt.Printf("delta %2d: mean degree %.2f\n", delta, mean.Values[i])
	}
	fmt.Printf("stability in [0, 1]: %v\n", mean.Stability >= 0 && mean.Stability <= 1)
	// Output:
	// delta  1: mean degree 0.33
	// delta  4: mean degree 1.20
	// delta 11: mean degree 2.00
	// stability in [0, 1]: true
}

// MetricWeighted is the weighted aggregation of GraphTempo/pyTempNet
// (AggregateNet): each window's edges weighted by how many stream
// events collapsed onto them. The total contact count is invariant in
// ∆ — every event lands in exactly one window at any period.
func ExampleMetricWeighted() {
	plan, err := repro.NewAnalysis(figure1(),
		repro.WithMetrics(repro.MetricWeighted),
		repro.WithGrid(4, 11),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := plan.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	curve, _ := report.Snapshot("weighted")
	meanW, _ := curve.Get("mean_weight")
	maxW, _ := curve.Get("max_weight")
	for i, delta := range curve.Deltas {
		fmt.Printf("delta %2d: mean weight %.2f, max weight %.0f\n", delta, meanW.Values[i], maxW.Values[i])
	}
	// Output:
	// delta  4: mean weight 1.00, max weight 1
	// delta 11: mean weight 1.80, max weight 3
}
